"""Deterministic fault plans: what to break, where, and on which call.

A :class:`FaultPlan` is a seeded script of failures against named *fault
points* — seams the pipeline code declares once (the registry below, same
register/validate shape as :mod:`repro.core.engines`) and fires through
:func:`repro.faults.injection.fire` on every pass.  With no plan armed a
fire is a single module-global ``None`` check (the :mod:`repro.obs.trace`
fast-path idiom); with a plan armed, each registered :class:`FaultSpec`
consults its trigger schedule and acts:

``error``  raise the configured exception at the fault point,
``kill``   ``os._exit`` the current process (a fork-pool worker vanishing
           mid-task, exactly what the OOM killer looks like),
``stall``  sleep ``stall_s`` seconds (a wedged worker / device),
``flag``   return ``True`` from ``fire`` and let the seam act (used by
           ``serving.shard``, where the seam kills the picked shard).

Triggers are pure functions of ``(call_count, ctx, rng)`` — reproducible
chaos: :func:`nth_call`, :func:`first_n`, :func:`always`,
:func:`probability` (seeded per spec from the plan seed), and
:func:`match` (fire when the seam's context matches, e.g.
``match(task=0, attempt=0)`` kills exactly the first attempt of shard
task 0).  ``times`` bounds how often a spec fires in the process that
evaluates it; state mutated inside a forked worker stays in that worker.

Built-in fault points::

    shard.worker    entry of every supervised fork-pool shard task
    storage.read    store manifest / array reads (read_array_dir)
    spill.write     spill-arena buffer allocation (default error: ENOSPC)
    serving.shard   cluster submit path (flag: the router kills the shard)
"""

from __future__ import annotations

import errno
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..obs import get_logger

__all__ = [
    "FaultPointSpec",
    "register_point",
    "unregister_point",
    "get_fault_point",
    "available_fault_points",
    "is_registered",
    "FaultSpec",
    "FaultPlan",
    "always",
    "nth_call",
    "first_n",
    "probability",
    "match",
]

_LOG = get_logger("faults")

# A trigger: (call_count, ctx, rng) -> bool.  call_count is 1-based.
TriggerFn = Callable[[int, dict, np.random.Generator], bool]


# ---------------------------------------------------------------------------
# fault-point registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultPointSpec:
    """One registered fault point: a named seam the pipeline fires through.

    ``default_error`` builds the exception an ``inject(point)`` with no
    explicit action raises — e.g. ``spill.write`` defaults to ENOSPC so a
    plan can say "the disk fills here" without spelling out the errno.
    """

    name: str
    description: str = ""
    default_error: Optional[Callable[[], BaseException]] = field(default=None, repr=False)


_REGISTRY: Dict[str, FaultPointSpec] = {}


def register_point(
    name: str,
    *,
    description: str = "",
    default_error: Optional[Callable[[], BaseException]] = None,
    overwrite: bool = False,
) -> FaultPointSpec:
    """Register a fault point under ``name`` and return its spec."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"fault point name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"fault point {name!r} is already registered (pass overwrite=True to replace)"
        )
    spec = FaultPointSpec(name=name, description=description, default_error=default_error)
    _REGISTRY[name] = spec
    return spec


def unregister_point(name: str) -> None:
    """Remove a registered fault point (built-ins may be removed too; tests use this)."""
    if name not in _REGISTRY:
        raise ConfigurationError(f"fault point {name!r} is not registered")
    del _REGISTRY[name]


def get_fault_point(name: str) -> FaultPointSpec:
    """Look up a fault point by name; raises with the list of known points."""
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown fault point {name!r}; registered points: {known}")
    return spec


def available_fault_points() -> tuple:
    """Names of all registered fault points, sorted."""
    return tuple(sorted(_REGISTRY))


def is_registered(name: str) -> bool:
    return name in _REGISTRY


# ---------------------------------------------------------------------------
# triggers
# ---------------------------------------------------------------------------

def always() -> TriggerFn:
    """Fire on every call (bounded only by the spec's ``times``)."""
    return lambda count, ctx, rng: True


def nth_call(n: int) -> TriggerFn:
    """Fire on exactly the ``n``-th call of the fault point (1-based)."""
    if n < 1:
        raise ConfigurationError(f"nth_call requires n >= 1, got {n}")
    return lambda count, ctx, rng: count == n


def first_n(n: int) -> TriggerFn:
    """Fire on each of the first ``n`` calls."""
    if n < 0:
        raise ConfigurationError(f"first_n requires n >= 0, got {n}")
    return lambda count, ctx, rng: count <= n


def probability(p: float) -> TriggerFn:
    """Fire with probability ``p`` per call, from the spec's seeded stream.

    The stream is derived from ``(plan seed, point name, spec index)``, so
    two runs of the same plan make identical fire/skip decisions.
    """
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError(f"probability requires p in [0, 1], got {p}")
    return lambda count, ctx, rng: bool(rng.random() < p)


def match(**expected) -> TriggerFn:
    """Fire when every ``key=value`` matches the seam's call context.

    Seams pass identifying context to ``fire`` (e.g. the supervised pool
    passes ``task=<key>, attempt=<n>``); ``match(task=0, attempt=0)``
    kills exactly the first attempt of shard task 0 and nothing else.
    """
    if not expected:
        raise ConfigurationError("match() requires at least one key=value to match on")
    return lambda count, ctx, rng: all(ctx.get(k) == v for k, v in expected.items())


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------

_ACTIONS = ("error", "kill", "stall", "flag")


class FaultSpec:
    """One scripted failure: a fault point, a trigger, an action, a budget."""

    __slots__ = ("point", "trigger", "times", "action", "error", "stall_s", "calls", "fired", "_rng")

    def __init__(
        self,
        point: str,
        trigger: TriggerFn,
        times: Optional[int],
        action: str,
        error: Optional[BaseException | Callable[[], BaseException]],
        stall_s: float,
        rng: np.random.Generator,
    ) -> None:
        self.point = point
        self.trigger = trigger
        self.times = times
        self.action = action
        self.error = error
        self.stall_s = float(stall_s)
        self.calls = 0
        self.fired = 0
        self._rng = rng

    def _make_error(self) -> BaseException:
        if callable(self.error):
            return self.error()
        return self.error

    def evaluate(self, ctx: dict) -> bool:
        """Advance this spec by one call; ``True`` when it should fire."""
        self.calls += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if not self.trigger(self.calls, ctx, self._rng):
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A seeded script of failures to inject while the plan is armed.

    Build the plan, script it with :meth:`inject`, then run the workload
    under :meth:`armed` (a context manager that installs the plan as the
    process-global active plan and always disarms on exit)::

        plan = FaultPlan(seed=7)
        plan.inject("shard.worker", kill=True, trigger=match(task=0, attempt=0))
        plan.inject("storage.read", trigger=nth_call(1))
        plan.inject("spill.write")                      # default: ENOSPC
        plan.inject("serving.shard", trigger=nth_call(1))
        with plan.armed():
            run_pipeline()

    Every parent-side fire increments the ``faults_injected`` counter (and
    the plan's own :attr:`injected` ledger); kills inside forked workers
    are counted at *detection* time by the supervisor (the increment made
    in the doomed child dies with it), so the counter ledger balances:
    ``faults_recovered + faults_degraded == faults_injected`` for a plan
    whose every fault is survived.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._specs: Dict[str, List[FaultSpec]] = {}
        self._lock = threading.Lock()
        self.injected = 0
        self.detected = 0

    # -- scripting ----------------------------------------------------------
    def inject(
        self,
        point: str,
        *,
        trigger: Optional[TriggerFn] = None,
        times: Optional[int] = 1,
        error: Optional[BaseException | Callable[[], BaseException]] = None,
        kill: bool = False,
        stall_s: Optional[float] = None,
    ) -> FaultSpec:
        """Script one failure at ``point``; returns the spec (for its counters).

        Exactly one action applies: ``kill=True`` exits the process,
        ``stall_s`` sleeps, ``error`` raises (an exception instance or a
        zero-arg factory).  With none given, the point's registered
        ``default_error`` is raised; a point without one (``serving.shard``)
        becomes a *flag* — ``fire`` returns ``True`` and the seam acts.
        ``times`` bounds total fires (``None`` = unlimited);
        ``trigger`` defaults to :func:`always`.
        """
        spec_point = get_fault_point(point)
        if kill and (error is not None or stall_s is not None):
            raise ConfigurationError(f"inject({point!r}): kill= excludes error= and stall_s=")
        if error is not None and stall_s is not None:
            raise ConfigurationError(f"inject({point!r}): pass either error= or stall_s=, not both")
        if times is not None and times < 1:
            raise ConfigurationError(f"inject({point!r}): times must be >= 1 or None, got {times}")
        if kill:
            action = "kill"
        elif stall_s is not None:
            if stall_s <= 0:
                raise ConfigurationError(f"inject({point!r}): stall_s must be positive, got {stall_s}")
            action = "stall"
        elif error is not None:
            action = "error"
        elif spec_point.default_error is not None:
            action, error = "error", spec_point.default_error
        else:
            action = "flag"
        with self._lock:
            index = sum(len(specs) for specs in self._specs.values())
            rng = np.random.default_rng([self.seed, zlib.crc32(point.encode()), index])
            spec = FaultSpec(point, trigger or always(), times, action, error, stall_s or 0.0, rng)
            self._specs.setdefault(point, []).append(spec)
        return spec

    def has(self, point: str) -> bool:
        """Whether any failure is scripted at ``point``."""
        return bool(self._specs.get(point))

    def points(self) -> tuple:
        """Fault points this plan scripts, sorted."""
        return tuple(sorted(p for p, specs in self._specs.items() if specs))

    # -- firing (called via repro.faults.injection) -------------------------
    def fire(self, point: str, **ctx) -> bool:
        """Evaluate every spec at ``point``; act on the ones that trigger.

        Returns ``True`` iff a *flag*-action spec fired (the seam then
        performs the failure itself).  ``error`` raises, ``kill`` never
        returns, ``stall`` sleeps then continues evaluating.
        """
        from ..obs import counters as _obs_counters

        specs = self._specs.get(point)
        if not specs:
            return False
        flagged = False
        for spec in specs:
            with self._lock:
                triggered = spec.evaluate(ctx)
                if triggered:
                    self.injected += 1
            if not triggered:
                continue
            _obs_counters.add("faults_injected")
            _LOG.warning("fault plan firing %s at %s (ctx=%s)", spec.action, point, ctx)
            if spec.action == "kill":
                os._exit(17)
            elif spec.action == "stall":
                time.sleep(spec.stall_s)
            elif spec.action == "error":
                raise spec._make_error()
            else:
                flagged = True
        return flagged

    def record_detection(self, point: str, count: int = 1) -> bool:
        """Account for faults that fired in a now-dead child process.

        A ``kill`` inside a forked worker increments counters in the
        child's copy-on-write memory, which dies with it; the supervisor
        calls this when it *detects* the loss, so the parent's
        ``faults_injected`` ledger still balances.  No-op (returns
        ``False``) when the plan scripts nothing at ``point``.
        """
        from ..obs import counters as _obs_counters

        if not self.has(point):
            return False
        with self._lock:
            self.detected += int(count)
            self.injected += int(count)
        _obs_counters.add("faults_injected", int(count))
        return True

    # -- arming -------------------------------------------------------------
    def armed(self):
        """Context manager: install as the active plan, disarm on exit."""
        from . import injection

        return injection.arming(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scripted = {p: len(s) for p, s in self._specs.items()}
        return f"<FaultPlan seed={self.seed} specs={scripted} injected={self.injected}>"


# ---------------------------------------------------------------------------
# built-in fault points
# ---------------------------------------------------------------------------

register_point(
    "shard.worker",
    description="entry of every supervised fork-pool shard task (kill/stall/error a worker)",
)
register_point(
    "storage.read",
    description="operator-store manifest and array reads (transient I/O errors)",
    default_error=lambda: OSError(errno.EIO, "injected transient I/O error"),
)
register_point(
    "spill.write",
    description="spill-arena buffer allocation (disk-full on the spill device)",
    default_error=lambda: OSError(errno.ENOSPC, "injected: no space left on device"),
)
register_point(
    "serving.shard",
    description="cluster submit path (flag: the router kills the picked shard mid-batch)",
)
