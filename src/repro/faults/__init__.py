"""Deterministic fault injection + the supervision seams that survive it.

Two halves:

* :mod:`repro.faults.plan` — the fault-point registry (``shard.worker``,
  ``storage.read``, ``spill.write``, ``serving.shard``), trigger schedules
  (:func:`nth_call`, :func:`probability`, :func:`match`, …) and the seeded
  :class:`FaultPlan` scripting what breaks when.
* :mod:`repro.faults.injection` — the process-global arming state and the
  :func:`~repro.faults.injection.fire` fast path the pipeline seams call
  (one ``None`` check when no plan is armed).

The point of injecting faults is proving the supervision around them:
the :class:`~repro.core.sharding.SupervisedPool` retries killed shard
tasks and degrades sharded backends to their single-process equivalents
bit-identically, store reads retry transient I/O errors, the spill arena
degrades to heap on ENOSPC, and the serving cluster restarts / breaker-
trips crashed shards — all of it counted in ``faults_injected`` /
``faults_recovered`` / ``faults_degraded`` (:mod:`repro.obs.counters`)
and exercised end-to-end by ``tests/integration/test_chaos.py``.
"""

from .injection import (
    active_plan,
    arm,
    armed,
    armed_for,
    arming,
    disarm,
    fire,
    record_detection,
)
from .plan import (
    FaultPlan,
    FaultPointSpec,
    FaultSpec,
    always,
    available_fault_points,
    first_n,
    get_fault_point,
    is_registered,
    match,
    nth_call,
    probability,
    register_point,
    unregister_point,
)

__all__ = [
    "FaultPlan",
    "FaultPointSpec",
    "FaultSpec",
    "always",
    "nth_call",
    "first_n",
    "probability",
    "match",
    "register_point",
    "unregister_point",
    "get_fault_point",
    "available_fault_points",
    "is_registered",
    "fire",
    "arm",
    "disarm",
    "arming",
    "armed",
    "armed_for",
    "active_plan",
    "record_detection",
]
