"""The process-global armed plan and the zero-cost ``fire`` fast path.

Pipeline seams call :func:`fire` unconditionally on their hot paths::

    from ..faults import injection as _faults
    ...
    _faults.fire("storage.read", path=manifest_path)

With no plan armed (the production state) that is one module-global load
plus a ``None`` check — the same disabled-cost discipline as
``obs/trace.py``'s ``get_tracer().enabled``, and covered by the same ≤3%
planned-matvec overhead guard in the obs tests.  Arming is explicit and
scoped (:func:`arming` / ``FaultPlan.armed()``), so chaos never leaks
past the ``with`` block that requested it.

Fork interaction: the armed plan rides into fork-pool workers by
copy-on-write, so child-side seams (``shard.worker``) fire without any
plumbing; state a child mutates (spec counters) dies with it, which is
why supervisors report detected kills back through
:func:`record_detection` in the parent.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .plan import FaultPlan

__all__ = [
    "fire",
    "arm",
    "disarm",
    "arming",
    "active_plan",
    "armed",
    "armed_for",
    "record_detection",
]

#: The active plan; ``None`` is the production fast path.
_PLAN: Optional[FaultPlan] = None


def fire(point: str, **ctx) -> bool:
    """Fire fault point ``point``; a no-op ``False`` when no plan is armed.

    With a plan armed, delegates to :meth:`FaultPlan.fire`: may raise the
    scripted error, kill or stall the process, or return ``True`` for
    flag-style points whose seam performs the failure itself.
    """
    plan = _PLAN
    if plan is None:
        return False
    return plan.fire(point, **ctx)


def arm(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-global active plan (replaces any)."""
    global _PLAN
    _PLAN = plan
    return plan


def disarm() -> None:
    """Remove the active plan; ``fire`` returns to the no-op fast path."""
    global _PLAN
    _PLAN = None


@contextmanager
def arming(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped arming: install ``plan``, restore the previous plan on exit."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, or ``None``."""
    return _PLAN


def armed() -> bool:
    """Whether any plan is armed."""
    return _PLAN is not None


def armed_for(point: str) -> bool:
    """Whether the armed plan scripts faults at ``point``."""
    plan = _PLAN
    return plan is not None and plan.has(point)


def record_detection(point: str, count: int = 1) -> bool:
    """Parent-side accounting for child-fired faults (see ``FaultPlan``).

    Returns ``True`` when an armed plan scripted ``point`` and the
    detection was recorded; supervisors call this exactly once per task
    they saw die, so real (un-injected) crashes never inflate the ledger
    when no chaos was requested.
    """
    plan = _PLAN
    if plan is None:
        return False
    return plan.record_detection(point, count)
