"""Unit tests for the iterative randomized-projection-tree neighbor search."""

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.config import DistanceMetric
from repro.core.distances import GeometricDistance, make_distance
from repro.core.neighbors import all_nearest_neighbors, exhaustive_neighbors

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def geometric_setup():
    pts = np.random.default_rng(0).standard_normal((300, 3))
    return pts, GeometricDistance(pts)


class TestExhaustiveSearch:
    def test_self_is_nearest(self, geometric_setup):
        _, distance = geometric_setup
        table = exhaustive_neighbors(distance, kappa=5)
        assert np.array_equal(table.indices[:, 0], np.arange(300))
        assert np.allclose(table.distances[:, 0], 0.0)

    def test_distances_sorted(self, geometric_setup):
        _, distance = geometric_setup
        table = exhaustive_neighbors(distance, kappa=8)
        assert np.all(np.diff(table.distances, axis=1) >= -1e-12)

    def test_matches_bruteforce_numpy(self, geometric_setup):
        pts, distance = geometric_setup
        table = exhaustive_neighbors(distance, kappa=4)
        d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        expected = np.argsort(d2, axis=1)[:, :4]
        # Compare as sets per row (ties may be ordered differently).
        for i in range(0, 300, 29):
            assert set(table.indices[i]) == set(expected[i])

    def test_kappa_capped_at_n(self):
        pts = np.random.default_rng(1).standard_normal((6, 2))
        table = exhaustive_neighbors(GeometricDistance(pts), kappa=10)
        assert table.indices.shape == (6, 6)


class TestIterativeSearch:
    def test_high_recall_against_exact(self, geometric_setup):
        _, distance = geometric_setup
        config = GOFMMConfig(leaf_size=32, neighbors=8, num_neighbor_trees=10, distance=DistanceMetric.GEOMETRIC)
        approx = all_nearest_neighbors(distance, config, rng=np.random.default_rng(0))
        exact = exhaustive_neighbors(distance, kappa=8)
        assert approx.recall_against(exact) > 0.6

    def test_recall_improves_with_iterations(self, geometric_setup):
        _, distance = geometric_setup
        exact = exhaustive_neighbors(distance, kappa=8)
        recalls = []
        for trees in (1, 8):
            config = GOFMMConfig(
                leaf_size=32,
                neighbors=8,
                num_neighbor_trees=trees,
                neighbor_accuracy_target=0.999,
                distance=DistanceMetric.GEOMETRIC,
            )
            table = all_nearest_neighbors(distance, config, rng=np.random.default_rng(1))
            recalls.append(table.recall_against(exact))
        assert recalls[1] >= recalls[0]

    def test_exact_when_single_leaf(self, geometric_setup):
        _, distance = geometric_setup
        config = GOFMMConfig(leaf_size=512, neighbors=6, distance=DistanceMetric.GEOMETRIC)
        table = all_nearest_neighbors(distance, config)
        exact = exhaustive_neighbors(distance, kappa=6)
        assert table.recall_against(exact) == pytest.approx(1.0)

    def test_self_always_included(self, geometric_setup):
        _, distance = geometric_setup
        config = GOFMMConfig(leaf_size=32, neighbors=4, num_neighbor_trees=3, distance=DistanceMetric.GEOMETRIC)
        table = all_nearest_neighbors(distance, config)
        for i in range(0, 300, 37):
            assert i in table.indices[i]

    def test_neighbor_indices_in_range(self, geometric_setup):
        _, distance = geometric_setup
        config = GOFMMConfig(leaf_size=32, neighbors=4, num_neighbor_trees=2, distance=DistanceMetric.GEOMETRIC)
        table = all_nearest_neighbors(distance, config)
        assert table.indices.min() >= 0
        assert table.indices.max() < 300

    def test_works_with_gram_distance(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, seed=2)
        config = GOFMMConfig(leaf_size=32, neighbors=6, num_neighbor_trees=5, distance=DistanceMetric.KERNEL)
        distance = make_distance(matrix, config.distance)
        table = all_nearest_neighbors(distance, config)
        exact = exhaustive_neighbors(distance, kappa=6)
        assert table.recall_against(exact) > 0.5

    def test_iteration_count_reported(self, geometric_setup):
        _, distance = geometric_setup
        config = GOFMMConfig(leaf_size=32, neighbors=4, num_neighbor_trees=6, distance=DistanceMetric.GEOMETRIC)
        table = all_nearest_neighbors(distance, config)
        assert 1 <= table.iterations <= 6
