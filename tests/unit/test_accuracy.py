"""Unit tests for the ε2 accuracy metric."""

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.core.accuracy import exact_relative_error, relative_error, spectral_relative_error

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def compressed_pair():
    matrix = make_gaussian_kernel_matrix(n=180, d=3, bandwidth=1.5, seed=3)
    config = GOFMMConfig(
        leaf_size=30, max_rank=30, tolerance=1e-9, neighbors=6,
        budget=0.3, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=3,
    )
    return matrix, compress(matrix, config)


class TestEpsilon2:
    def test_sampled_close_to_exact(self, compressed_pair):
        matrix, cm = compressed_pair
        sampled = relative_error(cm, matrix, num_rhs=6, num_sample_rows=150, rng=np.random.default_rng(0))
        exact = exact_relative_error(cm, matrix, num_rhs=6, rng=np.random.default_rng(0))
        assert sampled == pytest.approx(exact, rel=0.5, abs=1e-6)

    def test_exact_error_matches_direct_computation(self, compressed_pair):
        matrix, cm = compressed_pair
        rng = np.random.default_rng(1)
        err = exact_relative_error(cm, matrix, num_rhs=4, rng=np.random.default_rng(1))
        w = rng.standard_normal((matrix.n, 4))
        direct = np.linalg.norm(cm.matvec(w) - matrix.matvec(w)) / np.linalg.norm(matrix.matvec(w))
        assert err == pytest.approx(direct, rel=1e-10)

    def test_spectral_error_consistent_with_frobenius(self, compressed_pair):
        matrix, cm = compressed_pair
        spectral = spectral_relative_error(cm, matrix, iterations=20)
        exact = exact_relative_error(cm, matrix, num_rhs=8)
        # Both should be "small"; the spectral norm can exceed the per-vector
        # Frobenius estimate but not by orders of magnitude for these sizes.
        assert spectral < 50 * max(exact, 1e-12)

    def test_error_decreases_with_rank(self):
        matrix = make_gaussian_kernel_matrix(n=160, d=3, bandwidth=1.5, seed=4)
        errors = []
        for rank in (8, 32):
            config = GOFMMConfig(
                leaf_size=32, max_rank=rank, tolerance=1e-12, neighbors=6,
                budget=0.2, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=4,
            )
            cm = compress(matrix, config)
            errors.append(exact_relative_error(cm, matrix, num_rhs=4))
        assert errors[1] < errors[0]

    def test_error_decreases_with_budget(self):
        matrix = make_gaussian_kernel_matrix(n=160, d=3, bandwidth=0.6, seed=5)
        errors = []
        for budget in (0.0, 0.5):
            config = GOFMMConfig(
                leaf_size=32, max_rank=16, tolerance=1e-12, neighbors=8,
                budget=budget, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=5,
            )
            cm = compress(matrix, config)
            errors.append(exact_relative_error(cm, matrix, num_rhs=4))
        assert errors[1] <= errors[0]
