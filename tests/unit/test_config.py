"""Unit tests for GOFMMConfig parameter validation and helpers."""

import numpy as np
import pytest

from repro import ConfigurationError, GOFMMConfig
from repro.config import DistanceMetric, default_config, fmm_config, hss_config


class TestValidation:
    def test_defaults_are_valid(self):
        config = GOFMMConfig()
        assert config.leaf_size == 256
        assert config.distance is DistanceMetric.ANGLE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"leaf_size": 1},
            {"leaf_size": 0},
            {"max_rank": 0},
            {"tolerance": 0.0},
            {"tolerance": -1e-3},
            {"neighbors": 0},
            {"budget": -0.1},
            {"budget": 1.5},
            {"num_neighbor_trees": -1},
            {"neighbor_accuracy_target": 0.0},
            {"neighbor_accuracy_target": 1.5},
            {"sample_size": -1},
            {"oversampling": 0},
            {"centroid_samples": 0},
            {"dtype": np.int32},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GOFMMConfig(**kwargs)

    def test_distance_accepts_string(self):
        config = GOFMMConfig(distance="kernel")
        assert config.distance is DistanceMetric.KERNEL

    def test_invalid_distance_string(self):
        with pytest.raises(ValueError):
            GOFMMConfig(distance="not-a-metric")

    def test_dtype_normalized(self):
        config = GOFMMConfig(dtype=np.float32)
        assert config.dtype == np.dtype(np.float32)


class TestHelpers:
    def test_replace_returns_new_validated_config(self):
        config = GOFMMConfig(leaf_size=64)
        other = config.replace(max_rank=16)
        assert other.max_rank == 16
        assert other.leaf_size == 64
        assert config.max_rank != 16 or config.max_rank == 256

    def test_replace_validates(self):
        with pytest.raises(ConfigurationError):
            GOFMMConfig().replace(budget=2.0)

    def test_is_hss(self):
        assert GOFMMConfig(budget=0.0).is_hss
        assert not GOFMMConfig(budget=0.01).is_hss

    def test_effective_sample_size(self):
        config = GOFMMConfig(max_rank=32, oversampling=3, sample_size=0)
        assert config.effective_sample_size() == 96
        config = GOFMMConfig(max_rank=32, oversampling=2, sample_size=500)
        assert config.effective_sample_size() == 500

    def test_max_near_size_budget_zero(self):
        assert GOFMMConfig(budget=0.0).max_near_size(10_000) == 0

    def test_max_near_size_scales_with_n(self):
        config = GOFMMConfig(leaf_size=100, budget=0.1)
        assert config.max_near_size(10_000) == 10  # 10% of 100 leaves
        assert config.max_near_size(1_000) == 1

    def test_describe_mentions_key_parameters(self):
        text = GOFMMConfig(leaf_size=128, budget=0.05).describe()
        assert "m=128" in text
        assert "5.00%" in text


class TestFactories:
    def test_default_config(self):
        assert default_config().budget == pytest.approx(0.03)

    def test_hss_config_forces_budget_zero(self):
        assert hss_config().budget == 0.0
        assert hss_config(leaf_size=64).leaf_size == 64

    def test_fmm_config_budget(self):
        assert fmm_config(budget=0.12).budget == pytest.approx(0.12)

    def test_frozen(self):
        config = GOFMMConfig()
        with pytest.raises(Exception):
            config.leaf_size = 10  # type: ignore[misc]
