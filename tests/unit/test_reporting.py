"""Unit tests for the plain-text reporting helpers."""

from repro.reporting import format_scaling, format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["name", "eps2"], [["K02", 1.2e-5], ["G03", 0.5]], title="demo")
        assert "demo" in text
        assert "name" in text and "eps2" in text
        assert "K02" in text and "1.20e-05" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["x", 1], ["longer", 2]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series("gofmm", [1024, 2048], [0.1, 0.2])
        assert text.startswith("gofmm:")
        assert "1024" in text and "0.2" in text


class TestFormatScaling:
    def test_quadratic_slope(self):
        xs = [1000, 2000, 4000]
        ys = [1.0, 4.0, 16.0]
        text = format_scaling(xs, ys)
        assert "2.00" in text

    def test_linear_slope(self):
        xs = [1000, 2000, 4000]
        ys = [1.0, 2.0, 4.0]
        assert "1.00" in format_scaling(xs, ys)

    def test_handles_zero_values(self):
        assert "nan" in format_scaling([1, 2], [0.0, 1.0])
