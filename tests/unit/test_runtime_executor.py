"""Unit tests for the threaded out-of-order evaluation executor."""

import numpy as np
import pytest

from repro import GOFMMConfig, SchedulingError, compress
from repro.config import DistanceMetric
from repro.runtime import parallel_evaluate

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def compressed_pair():
    matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.2, seed=0)
    config = GOFMMConfig(
        leaf_size=25, max_rank=20, tolerance=1e-7, neighbors=6,
        budget=0.3, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=0,
    )
    return matrix, compress(matrix, config)


class TestParallelEvaluate:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential_vector(self, compressed_pair, workers):
        matrix, cm = compressed_pair
        w = np.random.default_rng(0).standard_normal(matrix.n)
        assert np.allclose(parallel_evaluate(cm, w, num_workers=workers), cm.matvec(w), atol=1e-10)

    def test_matches_sequential_multiple_rhs(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(1).standard_normal((matrix.n, 6))
        assert np.allclose(parallel_evaluate(cm, w, num_workers=3), cm.matvec(w), atol=1e-10)

    def test_deterministic_across_runs(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(2).standard_normal((matrix.n, 2))
        a = parallel_evaluate(cm, w, num_workers=4)
        b = parallel_evaluate(cm, w, num_workers=4)
        assert np.allclose(a, b, atol=1e-12)

    def test_hss_case(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.5, seed=1)
        config = GOFMMConfig(
            leaf_size=25, max_rank=25, tolerance=1e-8, neighbors=6,
            budget=0.0, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=1,
        )
        cm = compress(matrix, config)
        w = np.random.default_rng(3).standard_normal(matrix.n)
        assert np.allclose(parallel_evaluate(cm, w, num_workers=2), cm.matvec(w), atol=1e-10)

    def test_requires_positive_worker_count(self, compressed_pair):
        _, cm = compressed_pair
        with pytest.raises(SchedulingError):
            parallel_evaluate(cm, np.zeros(cm.n), num_workers=0)

    def test_output_shape_preserved(self, compressed_pair):
        matrix, cm = compressed_pair
        vec = parallel_evaluate(cm, np.zeros(matrix.n), num_workers=2)
        mat = parallel_evaluate(cm, np.zeros((matrix.n, 3)), num_workers=2)
        assert vec.shape == (matrix.n,)
        assert mat.shape == (matrix.n, 3)
