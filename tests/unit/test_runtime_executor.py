"""Unit tests for the threaded out-of-order evaluation executor."""

import numpy as np
import pytest

from repro import GOFMMConfig, SchedulingError, compress
from repro.config import DistanceMetric
from repro.runtime import CostModel, build_plan_dag, parallel_evaluate, run_task_graph
from repro.runtime.task import Task, TaskGraph

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def compressed_pair():
    matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.2, seed=0)
    config = GOFMMConfig(
        leaf_size=25, max_rank=20, tolerance=1e-7, neighbors=6,
        budget=0.3, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=0,
    )
    return matrix, compress(matrix, config)


class TestParallelEvaluate:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential_vector(self, compressed_pair, workers):
        matrix, cm = compressed_pair
        w = np.random.default_rng(0).standard_normal(matrix.n)
        assert np.allclose(parallel_evaluate(cm, w, num_workers=workers), cm.matvec(w), atol=1e-10)

    def test_matches_sequential_multiple_rhs(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(1).standard_normal((matrix.n, 6))
        assert np.allclose(parallel_evaluate(cm, w, num_workers=3), cm.matvec(w), atol=1e-10)

    def test_deterministic_across_runs(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(2).standard_normal((matrix.n, 2))
        a = parallel_evaluate(cm, w, num_workers=4)
        b = parallel_evaluate(cm, w, num_workers=4)
        assert np.allclose(a, b, atol=1e-12)

    def test_hss_case(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.5, seed=1)
        config = GOFMMConfig(
            leaf_size=25, max_rank=25, tolerance=1e-8, neighbors=6,
            budget=0.0, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=1,
        )
        cm = compress(matrix, config)
        w = np.random.default_rng(3).standard_normal(matrix.n)
        assert np.allclose(parallel_evaluate(cm, w, num_workers=2), cm.matvec(w), atol=1e-10)

    def test_requires_positive_worker_count(self, compressed_pair):
        _, cm = compressed_pair
        with pytest.raises(SchedulingError):
            parallel_evaluate(cm, np.zeros(cm.n), num_workers=0)

    def test_output_shape_preserved(self, compressed_pair):
        matrix, cm = compressed_pair
        vec = parallel_evaluate(cm, np.zeros(matrix.n), num_workers=2)
        mat = parallel_evaluate(cm, np.zeros((matrix.n, 3)), num_workers=2)
        assert vec.shape == (matrix.n,)
        assert mat.shape == (matrix.n, 3)


class TestPlannedEngine:
    """The executor scheduling plan segments instead of per-node closures."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("engine", ["planned", "reference"])
    def test_engines_match_sequential(self, compressed_pair, workers, engine):
        matrix, cm = compressed_pair
        w = np.random.default_rng(4).standard_normal((matrix.n, 4))
        out = parallel_evaluate(cm, w, num_workers=workers, engine=engine)
        assert np.allclose(out, cm.matvec(w, engine="reference"), atol=1e-10)

    def test_planned_hss(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.5, seed=1)
        config = GOFMMConfig(
            leaf_size=25, max_rank=25, tolerance=1e-8, neighbors=6,
            budget=0.0, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=1,
        )
        cm = compress(matrix, config)
        w = np.random.default_rng(5).standard_normal(matrix.n)
        out = parallel_evaluate(cm, w, num_workers=3, engine="planned")
        assert np.allclose(out, cm.matvec(w, engine="reference"), atol=1e-10)

    def test_unknown_engine_rejected(self, compressed_pair):
        _, cm = compressed_pair
        with pytest.raises(SchedulingError):
            parallel_evaluate(cm, np.zeros(cm.n), num_workers=2, engine="warp-drive")

    def test_plan_dag_structure(self, compressed_pair):
        _, cm = compressed_pair
        plan = cm.plan()
        graph, segments = build_plan_dag(plan, num_rhs=3)
        assert len(graph) == plan.num_segments == len(segments)
        # L2L segments are roots (independent of the up/down passes)
        for tid, seg in segments.items():
            if seg.kind == "L2L":
                assert not graph.predecessors(tid)
        # every S2S segment runs after every N2S segment (directly or transitively)
        order = {tid: i for i, tid in enumerate(graph.topological_order())}
        n2s_max = max((order[t] for t, s in segments.items() if s.kind == "N2S"), default=-1)
        s2s_min = min((order[t] for t, s in segments.items() if s.kind == "S2S"), default=np.inf)
        assert n2s_max < s2s_min


class TestRunTaskGraph:
    """The condition-variable worker pool drains deterministically."""

    def _graph(self, n=64):
        graph = TaskGraph()
        for i in range(n):
            graph.add_task(Task(task_id=f"t{i}", kind="L2L", node_id=i, flops=float(i)))
        for i in range(1, n):
            graph.add_dependency(f"t{i - 1}", f"t{i}")
        return graph

    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_all_tasks_execute_exactly_once(self, workers):
        import threading

        executed = []
        lock = threading.Lock()
        graph = self._graph()

        def payload(i):
            with lock:
                executed.append(i)

        payloads = {f"t{i}": (lambda i=i: payload(i)) for i in range(64)}
        count = run_task_graph(graph, workers, payloads=payloads)
        assert count == 64
        assert sorted(executed) == list(range(64))
        # the chain forces sequential order even with many workers
        assert executed == list(range(64))

    def test_error_propagates_and_pool_exits(self):
        graph = self._graph(8)

        def boom():
            raise ValueError("payload failure")

        payloads = {"t3": boom}
        with pytest.raises(ValueError, match="payload failure"):
            run_task_graph(graph, 4, payloads=payloads)

    def test_many_workers_on_tiny_graph(self):
        # more workers than tasks: nobody may hang waiting for work
        graph = TaskGraph()
        graph.add_task(Task(task_id="only", kind="L2L", node_id=0))
        assert run_task_graph(graph, 16) == 1

    def test_empty_graph(self):
        assert run_task_graph(TaskGraph(), 4) == 0

    def test_repeated_runs_stable(self, compressed_pair):
        # regression for the old polling/shutdown race: hammer the pool
        matrix, cm = compressed_pair
        w = np.random.default_rng(6).standard_normal((matrix.n, 2))
        expected = cm.matvec(w, engine="reference")
        for _ in range(10):
            for engine in ("planned", "reference"):
                out = parallel_evaluate(cm, w, num_workers=4, engine=engine)
                assert np.allclose(out, expected, atol=1e-10)


class TestWorkerPool:
    """The persistent pool shared across concurrent evaluations."""

    def test_concurrent_runs_share_one_pool(self, compressed_pair):
        import threading

        from repro.runtime import WorkerPool

        matrix, cm = compressed_pair
        w = np.random.default_rng(7).standard_normal((matrix.n, 2))
        expected = cm.matvec(w, engine="reference")
        results = [None] * 6
        errors = []
        with WorkerPool(3) as pool:
            def run(i):
                try:
                    results[i] = parallel_evaluate(cm, w, pool=pool)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        for out in results:
            assert np.allclose(out, expected, atol=1e-10)

    def test_pool_survives_a_failed_run(self):
        from repro.runtime import WorkerPool
        from repro.runtime.task import Task, TaskGraph

        def graph_with(payload):
            graph = TaskGraph()
            graph.add_task(Task(task_id="t", kind="L2L", node_id=0))
            return graph, {"t": payload}

        with WorkerPool(2) as pool:
            graph, payloads = graph_with(lambda: (_ for _ in ()).throw(ValueError("boom")))
            with pytest.raises(ValueError, match="boom"):
                pool.run(graph, payloads=payloads)
            done = []
            graph, payloads = graph_with(lambda: done.append(1))
            assert pool.run(graph, payloads=payloads) == 1
            assert done == [1]

    def test_shutdown_rejects_new_runs(self):
        from repro.runtime import WorkerPool
        from repro.runtime.task import TaskGraph

        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(SchedulingError, match="shut down"):
            pool.run(TaskGraph())

    def test_requires_positive_workers(self):
        from repro.runtime import WorkerPool

        with pytest.raises(SchedulingError):
            WorkerPool(0)


class TestStallTimeout:
    """GOFMMConfig.executor_stall_timeout: the watchdog on completion gaps."""

    def _hung_graph(self, release):
        import threading

        from repro.runtime.task import Task, TaskGraph

        graph = TaskGraph()
        graph.add_task(Task(task_id="hang", kind="L2L", node_id=0))
        return graph, {"hang": (lambda: release.wait(timeout=30))}

    def test_watchdog_fires_on_hung_payload(self):
        import threading
        import time as _time

        release = threading.Event()
        graph, payloads = self._hung_graph(release)
        try:
            started = _time.monotonic()
            with pytest.raises(SchedulingError, match="stall timeout"):
                run_task_graph(graph, 2, payloads=payloads, stall_timeout=0.05)
            # the error must reach the caller promptly: shutdown may not
            # full-join the worker still wedged inside the payload
            assert _time.monotonic() - started < 5.0
        finally:
            release.set()

    def test_no_false_positive_while_progressing(self):
        # 30 quick tasks, each well under the timeout: the window restarts on
        # every completion, so the watchdog must not fire.
        import time as _time

        from repro.runtime.task import Task, TaskGraph

        graph = TaskGraph()
        for i in range(30):
            graph.add_task(Task(task_id=f"t{i}", kind="L2L", node_id=i))
        for i in range(1, 30):
            graph.add_dependency(f"t{i-1}", f"t{i}")
        payloads = {f"t{i}": (lambda: _time.sleep(0.005)) for i in range(30)}
        assert run_task_graph(graph, 2, payloads=payloads, stall_timeout=0.1) == 30

    def test_watchdog_raises_typed_error_with_stalled_task_label(self):
        # The stall error is typed and carries which task(s) were wedged,
        # so callers (and their logs) can name the culprit payload.
        import threading

        from repro.errors import ExecutorStallError

        release = threading.Event()
        graph, payloads = self._hung_graph(release)
        try:
            with pytest.raises(ExecutorStallError) as info:
                run_task_graph(graph, 2, payloads=payloads, stall_timeout=0.05)
            assert info.value.stalled_tasks == ("hang",)
            assert info.value.task_label == "hang"
            assert "hang" in str(info.value)
            assert isinstance(info.value, SchedulingError)  # back-compat catch sites
        finally:
            release.set()

    def test_config_validates_timeout(self):
        from repro import ConfigurationError

        with pytest.raises(ConfigurationError):
            GOFMMConfig(executor_stall_timeout=0.0)
        with pytest.raises(ConfigurationError):
            GOFMMConfig(executor_stall_timeout=-1.0)
        assert GOFMMConfig(executor_stall_timeout=None).executor_stall_timeout is None
        assert GOFMMConfig().executor_stall_timeout == 300.0

    def test_parallel_evaluate_inherits_config_timeout(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(8).standard_normal(matrix.n)
        # a generous config timeout must not disturb a normal evaluation
        out = parallel_evaluate(cm, w, num_workers=2)
        assert np.allclose(out, cm.matvec(w), atol=1e-10)
