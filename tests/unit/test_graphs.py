"""Unit tests for the graph-Laplacian matrices (G01–G05 emulation)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import MatrixDefinitionError
from repro.matrices.graphs import (
    economic_network_graph,
    graph_matrix,
    inverse_graph_laplacian,
    lattice_qcd_like_graph,
    near_regular_graph,
    power_grid_graph,
    random_geometric_graph,
)

GRAPH_BUILDERS = [
    power_grid_graph,
    economic_network_graph,
    random_geometric_graph,
    near_regular_graph,
    lattice_qcd_like_graph,
]


@pytest.mark.parametrize("builder", GRAPH_BUILDERS, ids=lambda f: f.__name__)
class TestGraphGenerators:
    def test_connected(self, builder):
        graph = builder(80, seed=0)
        assert nx.is_connected(graph)

    def test_labels_are_contiguous(self, builder):
        graph = builder(60, seed=1)
        assert sorted(graph.nodes()) == list(range(graph.number_of_nodes()))

    def test_deterministic(self, builder):
        g1 = builder(50, seed=7)
        g2 = builder(50, seed=7)
        assert set(g1.edges()) == set(g2.edges())


class TestInverseGraphLaplacian:
    def test_spd(self):
        graph = random_geometric_graph(70, seed=0)
        m = inverse_graph_laplacian(graph, shift=1e-2)
        a = m.array
        assert np.allclose(a, a.T, atol=1e-10)
        assert np.linalg.eigvalsh(a).min() > 0.0

    def test_no_coordinates(self):
        graph = power_grid_graph(40, seed=0)
        m = inverse_graph_laplacian(graph)
        assert m.coordinates is None

    def test_matches_direct_inverse(self):
        graph = nx.cycle_graph(12)
        lap = nx.laplacian_matrix(graph).toarray().astype(float)
        shift = 0.1 * lap.diagonal().mean()
        expected = np.linalg.inv(lap + shift * np.eye(12))
        expected /= np.abs(expected).max()
        m = inverse_graph_laplacian(graph, shift=0.1)
        assert np.allclose(m.array, expected, atol=1e-8)

    def test_truncation_keeps_spd(self):
        graph = near_regular_graph(60, seed=2)
        m = inverse_graph_laplacian(graph, n_target=40)
        assert m.n == 40
        assert np.linalg.eigvalsh(m.array).min() > 0.0


class TestGraphMatrixFactory:
    @pytest.mark.parametrize("name", ["G01", "G02", "G03", "G04", "G05"])
    def test_all_names_build(self, name):
        m = graph_matrix(name, 64, seed=0)
        assert m.n == 64
        assert np.linalg.eigvalsh(m.array).min() > 0.0

    def test_lowercase_accepted(self):
        assert graph_matrix("g03", 32).n == 32

    def test_unknown_name_rejected(self):
        with pytest.raises(MatrixDefinitionError):
            graph_matrix("G99", 32)
