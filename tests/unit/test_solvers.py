"""Unit tests for the CG solver and block-Jacobi preconditioner."""

import numpy as np
import pytest

from repro import EvaluationError, GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.solvers import BlockJacobiPreconditioner, conjugate_gradient, solve

from ..conftest import make_gaussian_kernel_matrix, make_random_spd


@pytest.fixture(scope="module")
def compressed_pair():
    matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.5, seed=0)
    config = GOFMMConfig(
        leaf_size=25, max_rank=25, tolerance=1e-9, neighbors=8,
        budget=0.3, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=0,
    )
    return matrix, compress(matrix, config)


class TestConjugateGradient:
    def test_solves_dense_spd_system(self):
        matrix = make_random_spd(60, seed=0, decay=1.0)
        a = matrix.array + 0.1 * np.eye(60)
        b = np.random.default_rng(0).standard_normal(60)
        result = conjugate_gradient(lambda v: a @ v, b, tolerance=1e-10, max_iterations=300)
        assert result.converged
        assert np.linalg.norm(a @ result.solution - b) / np.linalg.norm(b) < 1e-8

    def test_shift_applied(self):
        matrix = make_random_spd(40, seed=1, decay=1.0)
        a = matrix.array
        b = np.random.default_rng(1).standard_normal(40)
        result = conjugate_gradient(lambda v: a @ v, b, shift=0.5, tolerance=1e-10)
        assert result.converged
        assert np.allclose((a + 0.5 * np.eye(40)) @ result.solution, b, atol=1e-6)

    def test_residual_history_monotone_overall(self):
        matrix = make_random_spd(50, seed=2, decay=1.5)
        a = matrix.array + 0.2 * np.eye(50)
        b = np.ones(50)
        result = conjugate_gradient(lambda v: a @ v, b, tolerance=1e-12, max_iterations=200)
        assert result.residual_history[-1] < result.residual_history[0]
        assert result.iterations == len(result.residual_history) - 1

    def test_rejects_higher_dimensional_rhs(self):
        with pytest.raises(EvaluationError):
            conjugate_gradient(lambda v: v, np.zeros((5, 2, 2)))

    def test_zero_rhs_converges_immediately(self):
        result = conjugate_gradient(lambda v: v, np.zeros(10))
        assert result.converged
        assert result.iterations == 0


class TestBlockedConjugateGradient:
    def test_multi_rhs_matches_column_by_column(self):
        matrix = make_random_spd(60, seed=4, decay=1.0)
        a = matrix.array + 0.1 * np.eye(60)
        b = np.random.default_rng(4).standard_normal((60, 5))
        blocked = conjugate_gradient(lambda v: a @ v, b, tolerance=1e-10, max_iterations=300)
        assert blocked.converged
        assert blocked.solution.shape == (60, 5)
        assert blocked.column_converged.shape == (5,)
        assert blocked.column_converged.all()
        for j in range(5):
            single = conjugate_gradient(lambda v: a @ v, b[:, j], tolerance=1e-10, max_iterations=300)
            assert np.allclose(blocked.solution[:, j], single.solution, atol=1e-7)

    def test_multi_rhs_residuals_small(self):
        matrix = make_random_spd(50, seed=5, decay=1.5)
        a = matrix.array + 0.2 * np.eye(50)
        b = np.random.default_rng(5).standard_normal((50, 3))
        result = conjugate_gradient(lambda v: a @ v, b, tolerance=1e-10, max_iterations=300)
        res = np.linalg.norm(a @ result.solution - b, axis=0) / np.linalg.norm(b, axis=0)
        assert np.all(res < 1e-8)
        assert np.all(result.column_residual_norms >= 0)

    def test_single_column_block_matches_vector_path(self):
        matrix = make_random_spd(40, seed=6, decay=1.0)
        a = matrix.array + 0.1 * np.eye(40)
        b = np.random.default_rng(6).standard_normal(40)
        vec = conjugate_gradient(lambda v: a @ v, b, tolerance=1e-10)
        blk = conjugate_gradient(lambda v: a @ v, b[:, None], tolerance=1e-10)
        assert blk.solution.shape == (40, 1)
        assert np.allclose(vec.solution, blk.solution[:, 0], atol=1e-12)
        assert vec.iterations == blk.iterations

    def test_multi_rhs_with_preconditioner(self):
        diag = np.logspace(0, 5, 64)
        a = np.diag(diag)
        b = np.random.default_rng(7).standard_normal((64, 4))
        plain = conjugate_gradient(lambda v: a @ v, b, tolerance=1e-10, max_iterations=2000)
        precond = conjugate_gradient(
            lambda v: a @ v, b, tolerance=1e-10, max_iterations=2000,
            preconditioner=lambda r: r / diag[:, None] if r.ndim == 2 else r / diag,
        )
        assert precond.converged
        assert precond.iterations < plain.iterations or plain.iterations == 2000

    def test_solve_accepts_block_rhs(self, compressed_pair):
        matrix, cm = compressed_pair
        b = np.random.default_rng(8).standard_normal((matrix.n, 3))
        result = solve(cm, b, shift=1.0, tolerance=1e-8, max_iterations=400)
        assert result.solution.shape == (matrix.n, 3)
        assert result.converged
        # The compressed solve approximately inverts the true shifted matrix
        # (the residual floor is the compression error, not the CG tolerance).
        dense = matrix.to_dense() + 1.0 * np.eye(matrix.n)
        res = np.linalg.norm(dense @ result.solution - b, axis=0) / np.linalg.norm(b, axis=0)
        assert np.all(res < 5e-2)

    def test_preconditioner_reduces_iterations(self):
        # Ill-conditioned diagonal system: Jacobi preconditioning should help a lot.
        diag = np.logspace(0, 6, 80)
        a = np.diag(diag)
        b = np.random.default_rng(3).standard_normal(80)
        plain = conjugate_gradient(lambda v: a @ v, b, tolerance=1e-10, max_iterations=2000)
        precond = conjugate_gradient(
            lambda v: a @ v, b, tolerance=1e-10, max_iterations=2000, preconditioner=lambda r: r / diag
        )
        assert precond.converged
        assert precond.iterations < plain.iterations or plain.iterations == 2000


class TestBlockJacobi:
    def test_applies_inverse_of_leaf_blocks(self, compressed_pair):
        matrix, cm = compressed_pair
        precond = BlockJacobiPreconditioner(cm, shift=0.0)
        r = np.random.default_rng(0).standard_normal(matrix.n)
        z = precond(r)
        # For each leaf, K_leaf @ z_leaf == r_leaf.
        leaf = cm.tree.leaves[0]
        block = matrix.entries(leaf.indices, leaf.indices)
        assert np.allclose(block @ z[leaf.indices], r[leaf.indices], atol=1e-8)

    def test_shift_incorporated(self, compressed_pair):
        matrix, cm = compressed_pair
        shift = 0.7
        precond = BlockJacobiPreconditioner(cm, shift=shift)
        r = np.random.default_rng(1).standard_normal(matrix.n)
        z = precond(r)
        leaf = cm.tree.leaves[1]
        block = matrix.entries(leaf.indices, leaf.indices) + shift * np.eye(leaf.size)
        assert np.allclose(block @ z[leaf.indices], r[leaf.indices], atol=1e-8)


class TestSolve:
    def test_cg_solves_the_compressed_operator_exactly(self, compressed_pair):
        """Against K̃ itself (its dense form), CG converges to the true solution."""
        matrix, cm = compressed_pair
        shift = 0.1
        b = np.random.default_rng(2).standard_normal(matrix.n)
        result = solve(cm, b, shift=shift, tolerance=1e-12, max_iterations=2000)
        assert result.converged
        dense_tilde = cm.to_dense() + shift * np.eye(matrix.n)
        exact = np.linalg.solve(dense_tilde, b)
        rel = np.linalg.norm(result.solution - exact) / np.linalg.norm(exact)
        assert rel < 1e-8

    def test_solution_close_to_true_system_for_well_conditioned_shift(self, compressed_pair):
        """With a shift that keeps the system well conditioned, the K̃-solve tracks the K-solve."""
        matrix, cm = compressed_pair
        shift = 0.5
        b = np.random.default_rng(2).standard_normal(matrix.n)
        result = solve(cm, b, shift=shift, tolerance=1e-10, max_iterations=2000)
        assert result.converged
        dense = matrix.to_dense() + shift * np.eye(matrix.n)
        exact = np.linalg.solve(dense, b)
        rel = np.linalg.norm(result.solution - exact) / np.linalg.norm(exact)
        assert rel < 5e-2

    def test_unpreconditioned_option(self, compressed_pair):
        matrix, cm = compressed_pair
        b = np.ones(matrix.n)
        result = solve(cm, b, shift=0.1, tolerance=1e-8, use_preconditioner=False)
        assert result.converged

    def test_preconditioning_does_not_increase_iterations_much(self, compressed_pair):
        matrix, cm = compressed_pair
        b = np.random.default_rng(3).standard_normal(matrix.n)
        plain = solve(cm, b, shift=0.1, tolerance=1e-8, use_preconditioner=False, max_iterations=2000)
        precond = solve(cm, b, shift=0.1, tolerance=1e-8, use_preconditioner=True, max_iterations=2000)
        assert precond.converged
        assert precond.iterations <= plain.iterations * 1.5 + 5
