"""Unit tests for the symbolic-traversal DAG builders."""

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.runtime import CostModel, build_compression_dag, build_evaluation_dag

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def compressed():
    matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.2, seed=0)
    config = GOFMMConfig(
        leaf_size=25, max_rank=20, tolerance=1e-7, neighbors=6,
        budget=0.3, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=0,
    )
    return compress(matrix, config)


@pytest.fixture(scope="module")
def cost():
    return CostModel(leaf_size=25, rank=20, num_rhs=4)


class TestEvaluationDAG:
    def test_task_families_present(self, compressed, cost):
        graph = build_evaluation_dag(compressed.tree, cost)
        assert graph.kinds() == {"N2S", "S2S", "S2N", "L2L"}

    def test_task_counts(self, compressed, cost):
        graph = build_evaluation_dag(compressed.tree, cost)
        tree = compressed.tree
        non_root = len(tree.nodes) - 1
        assert len(graph.tasks_of_kind("N2S")) == non_root
        assert len(graph.tasks_of_kind("S2N")) == non_root
        assert len(graph.tasks_of_kind("L2L")) == len(tree.leaves)
        expected_s2s = sum(1 for node in tree.nodes if node.far)
        assert len(graph.tasks_of_kind("S2S")) == expected_s2s

    def test_acyclic(self, compressed, cost):
        build_evaluation_dag(compressed.tree, cost).validate()

    def test_n2s_postorder_dependencies(self, compressed, cost):
        graph = build_evaluation_dag(compressed.tree, cost)
        for node in compressed.tree.nodes:
            if node.is_root or node.is_leaf:
                continue
            for child in node.children():
                assert f"N2S:{node.node_id}" in graph.successors(f"N2S:{child.node_id}")

    def test_s2s_depends_on_far_n2s(self, compressed, cost):
        graph = build_evaluation_dag(compressed.tree, cost)
        for node in compressed.tree.nodes:
            if not node.far:
                continue
            preds = graph.predecessors(f"S2S:{node.node_id}")
            for alpha_id in node.far:
                assert f"N2S:{alpha_id}" in preds

    def test_s2n_depends_on_parent_s2n(self, compressed, cost):
        graph = build_evaluation_dag(compressed.tree, cost)
        for node in compressed.tree.nodes:
            if node.is_root or node.parent is None or node.parent.is_root:
                continue
            assert f"S2N:{node.parent.node_id}" in graph.predecessors(f"S2N:{node.node_id}")

    def test_l2l_independent_of_other_families(self, compressed, cost):
        graph = build_evaluation_dag(compressed.tree, cost)
        for task in graph.tasks_of_kind("L2L"):
            assert graph.predecessors(task.task_id) == set()
            assert graph.successors(task.task_id) == set()

    def test_l2l_gpu_eligible(self, compressed, cost):
        graph = build_evaluation_dag(compressed.tree, cost)
        assert all(task.gpu_eligible for task in graph.tasks_of_kind("L2L"))
        assert not any(task.gpu_eligible for task in graph.tasks_of_kind("N2S"))

    def test_include_l2l_flag(self, compressed, cost):
        graph = build_evaluation_dag(compressed.tree, cost, include_l2l=False)
        assert not graph.tasks_of_kind("L2L")


class TestCompressionDAG:
    def test_task_families_present(self, compressed, cost):
        graph = build_compression_dag(compressed.tree, cost)
        assert {"SPLI", "ANN", "SKEL", "COEF"}.issubset(graph.kinds())

    def test_acyclic(self, compressed, cost):
        build_compression_dag(compressed.tree, cost).validate()

    def test_spli_preorder(self, compressed, cost):
        graph = build_compression_dag(compressed.tree, cost)
        for node in compressed.tree.nodes:
            if node.parent is not None:
                assert f"SPLI:{node.parent.node_id}" in graph.predecessors(f"SPLI:{node.node_id}")

    def test_skel_postorder(self, compressed, cost):
        graph = build_compression_dag(compressed.tree, cost)
        for node in compressed.tree.nodes:
            if node.is_root or node.is_leaf:
                continue
            for child in node.children():
                assert f"SKEL:{child.node_id}" in graph.predecessors(f"SKEL:{node.node_id}")

    def test_coef_follows_skel(self, compressed, cost):
        graph = build_compression_dag(compressed.tree, cost)
        for node in compressed.tree.nodes:
            if node.is_root:
                continue
            assert f"SKEL:{node.node_id}" in graph.predecessors(f"COEF:{node.node_id}")

    def test_ann_only_on_leaves(self, compressed, cost):
        graph = build_compression_dag(compressed.tree, cost)
        leaf_ids = {leaf.node_id for leaf in compressed.tree.leaves}
        assert {t.node_id for t in graph.tasks_of_kind("ANN")} == leaf_ids

    def test_neighbor_iterations_scale_ann_cost(self, compressed, cost):
        one = build_compression_dag(compressed.tree, cost, num_neighbor_trees=1)
        ten = build_compression_dag(compressed.tree, cost, num_neighbor_trees=10)
        ann_one = sum(t.flops for t in one.tasks_of_kind("ANN"))
        ann_ten = sum(t.flops for t in ten.tasks_of_kind("ANN"))
        assert ann_ten == pytest.approx(10 * ann_one)
