"""Unit tests for the randomized global low-rank approximations."""

import numpy as np

from repro.linalg import nystrom_approximation, randomized_id, randomized_range_finder
from repro.linalg.rand import randomized_svd


def spd_with_decay(n, decay=1.0, seed=0):
    gen = np.random.default_rng(seed)
    q, _ = np.linalg.qr(gen.standard_normal((n, n)))
    eigenvalues = np.exp(-decay * np.arange(n))
    return (q * eigenvalues) @ q.T


class TestRangeFinder:
    def test_orthonormal_basis(self):
        a = spd_with_decay(60, decay=0.3, seed=0)
        q = randomized_range_finder(a, rank=10, rng=np.random.default_rng(0))
        assert q.shape == (60, 10)
        assert np.allclose(q.T @ q, np.eye(10), atol=1e-10)

    def test_captures_dominant_range(self):
        a = spd_with_decay(80, decay=0.5, seed=1)
        q = randomized_range_finder(a, rank=15, rng=np.random.default_rng(1))
        residual = a - q @ (q.T @ a)
        assert np.linalg.norm(residual) / np.linalg.norm(a) < 1e-3


class TestRandomizedSVD:
    def test_matches_exact_svd_for_low_rank(self):
        gen = np.random.default_rng(2)
        a = gen.standard_normal((70, 20)) @ gen.standard_normal((20, 50))
        u, s, vt = randomized_svd(a, rank=20, rng=gen)
        approx = u @ np.diag(s) @ vt
        assert np.linalg.norm(approx - a) / np.linalg.norm(a) < 1e-8

    def test_singular_values_descending(self):
        a = spd_with_decay(50, decay=0.2, seed=3)
        _, s, _ = randomized_svd(a, rank=10, rng=np.random.default_rng(3))
        assert np.all(np.diff(s) <= 1e-12)


class TestRandomizedID:
    def test_reconstruction_from_sketch(self):
        gen = np.random.default_rng(4)
        a = gen.standard_normal((100, 15)) @ gen.standard_normal((15, 40))
        dec = randomized_id(a, rank=15, rng=gen)
        assert dec.rank <= 15
        recon = a[:, dec.skeleton] @ dec.coeffs
        assert np.linalg.norm(recon - a) / np.linalg.norm(a) < 1e-6


class TestNystrom:
    def test_psd_and_accuracy_with_good_landmarks(self):
        a = spd_with_decay(60, decay=0.4, seed=5)
        landmarks = np.arange(0, 60, 2)
        approx = nystrom_approximation(a, landmarks)
        dense = approx.reconstruct()
        # Approximation of an SPD matrix via the symmetric square root stays PSD.
        eigenvalues = np.linalg.eigvalsh(0.5 * (dense + dense.T))
        assert eigenvalues.min() > -1e-8
        assert np.linalg.norm(dense - a) / np.linalg.norm(a) < 1e-2

    def test_matvec_matches_reconstruction(self):
        a = spd_with_decay(40, decay=0.3, seed=6)
        approx = nystrom_approximation(a, np.arange(0, 40, 4))
        w = np.random.default_rng(0).standard_normal(40)
        assert np.allclose(approx.matvec(w), approx.reconstruct() @ w, atol=1e-10)

    def test_rank_property(self):
        a = spd_with_decay(30, decay=0.3, seed=7)
        approx = nystrom_approximation(a, np.arange(5))
        assert approx.rank == 5
