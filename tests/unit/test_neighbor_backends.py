"""Unit tests for the neighbor-backend registry and backend parity.

The contract under test is stronger than "similar recall": all built-in
backends (``"reference"``, ``"blocked"``, ``"sharded"``) consume the same
rng stream and the same merge tie-breaking, so on the same problem they
must produce **bit-identical** neighbor tables — and the ``"sharded"``
backend must produce them for *every* worker count (process count is an
execution knob, never a semantic one).
"""

import numpy as np
import pytest

from repro import ConfigurationError, GOFMMConfig
from repro.api import Session
from repro.config import DistanceMetric
from repro.core import neighbor_backends
from repro.core.distances import GeometricDistance, make_distance
from repro.core.neighbors import (
    NeighborTable,
    _merge_candidates,
    all_nearest_neighbors,
    exhaustive_neighbors,
    init_table,
    merge_candidate_block,
    row_set_overlap,
    screened_merge,
    unchanged_fraction,
)
from repro.core.sharding import fork_available
from repro.errors import CompressionError

from ..conftest import make_gaussian_kernel_matrix

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)


def geometric_config(**overrides):
    params = dict(
        distance=DistanceMetric.GEOMETRIC, leaf_size=32, neighbors=8,
        num_neighbor_trees=4, neighbor_accuracy_target=0.999, seed=0,
    )
    params.update(overrides)
    return GOFMMConfig(**params)


@pytest.fixture()
def points():
    return np.random.default_rng(7).standard_normal((600, 4))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtins_available(self):
        assert {"reference", "blocked", "sharded"} <= set(
            neighbor_backends.available_neighbor_backends()
        )
        for name in ("reference", "blocked", "sharded"):
            assert neighbor_backends.is_registered(name)

    def test_get_unknown_raises_with_known_list(self):
        with pytest.raises(CompressionError, match="registered backends"):
            neighbor_backends.get_neighbor_backend("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CompressionError, match="already registered"):
            neighbor_backends.register("blocked", lambda *a, **k: None)

    def test_register_unregister_roundtrip(self):
        spec = neighbor_backends.register(
            "custom-test", lambda distance, config, rng: None, description="x"
        )
        try:
            assert neighbor_backends.is_registered("custom-test")
            assert spec.name == "custom-test"
            # The config validates against the live registry.
            assert geometric_config(neighbor_backend="custom-test").neighbor_backend == "custom-test"
        finally:
            neighbor_backends.unregister("custom-test")
        assert not neighbor_backends.is_registered("custom-test")

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="neighbor_backend"):
            geometric_config(neighbor_backend="definitely-not-registered")

    def test_config_rejects_bad_worker_counts(self):
        with pytest.raises(ConfigurationError, match="neighbor_workers"):
            geometric_config(neighbor_workers=0)
        with pytest.raises(ConfigurationError, match="compression_workers"):
            GOFMMConfig(compression_workers=-1)

    def test_default_backend_is_blocked(self):
        assert GOFMMConfig().neighbor_backend == "blocked"


# ---------------------------------------------------------------------------
# merge kernels: blocked/screened paths against the per-row oracle
# ---------------------------------------------------------------------------

def random_merge_problem(rng, n=512, m=96, kappa=7, k=5, duplicates=False):
    """A random table + candidate block with realistic invariants.

    Tables start from ``init_table`` (self at 0, +inf fillers) and the
    candidates carry exact distances; with ``duplicates`` the candidate
    rows also repeat entries (the self-padded short leaves of the sharded
    backend do exactly this).
    """
    idx_table, dist_table = init_table(n, kappa, rng)
    rows = np.sort(rng.choice(n, size=m, replace=False)).astype(np.intp)
    cand_idx = rng.integers(0, n, size=(m, k)).astype(np.intp)
    cand_dist = rng.random((m, k))
    if duplicates:
        # Repeats that lose to a stored entry — the documented precondition.
        # The sharded slab pads short leaves with the row's own index at
        # +inf; self at distance 0 re-proposes the stored self entry.
        cand_idx[:, -1] = rows
        cand_dist[:, -1] = np.inf
        cand_idx[::3, 1] = rows[::3]
        cand_dist[::3, 1] = 0.0
    return idx_table, dist_table, rows, cand_idx, cand_dist


@pytest.mark.parametrize("duplicates", [False, True])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_merge_candidate_block_matches_oracle(seed, duplicates):
    rng = np.random.default_rng(seed)
    idx_table, dist_table, rows, cand_idx, cand_dist = random_merge_problem(
        rng, duplicates=duplicates
    )
    oracle_idx, oracle_dist = idx_table.copy(), dist_table.copy()
    for r, row in enumerate(rows):
        oracle_idx[row], oracle_dist[row] = _merge_candidates(
            oracle_idx[row], oracle_dist[row], cand_idx[r], cand_dist[r]
        )
    merge_candidate_block(idx_table, dist_table, rows, cand_idx, cand_dist)
    np.testing.assert_array_equal(idx_table, oracle_idx)
    np.testing.assert_array_equal(dist_table, oracle_dist)


@pytest.mark.parametrize("screen", [False, True])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_screened_merge_matches_oracle(seed, screen):
    rng = np.random.default_rng(seed)
    idx_table, dist_table, rows, cand_idx, cand_dist = random_merge_problem(
        rng, duplicates=(seed % 2 == 1)
    )
    # Warm the table first so screening has real distances to screen against.
    warm_idx = rng.integers(0, idx_table.shape[0], size=cand_idx.shape).astype(np.intp)
    merge_candidate_block(idx_table, dist_table, rows, warm_idx, rng.random(cand_dist.shape))
    pre_idx = idx_table.copy()
    oracle_idx, oracle_dist = idx_table.copy(), dist_table.copy()
    for r, row in enumerate(rows):
        oracle_idx[row], oracle_dist[row] = _merge_candidates(
            oracle_idx[row], oracle_dist[row], cand_idx[r], cand_dist[r]
        )
    touched, overlap = screened_merge(
        idx_table, dist_table, rows, cand_idx, cand_dist, screen=screen
    )
    np.testing.assert_array_equal(idx_table, oracle_idx)
    np.testing.assert_array_equal(dist_table, oracle_dist)
    # The reported overlap must equal the post-hoc set overlap over the
    # touched rows (what the incremental convergence measure consumes);
    # untouched rows are unchanged by construction.
    assert touched.size <= rows.size
    untouched = np.setdiff1d(rows, touched)
    np.testing.assert_array_equal(pre_idx[untouched], idx_table[untouched])
    assert overlap == int(row_set_overlap(pre_idx[touched], idx_table[touched]).sum())


def test_row_set_overlap_pinned():
    a = np.array([[0, 1, 2], [3, 4, 5], [6, 7, 8]])
    b = np.array([[2, 1, 9], [3, 4, 5], [0, 1, 2]])
    np.testing.assert_array_equal(row_set_overlap(a, b), [2, 3, 0])
    # Duplicates count once (set semantics).
    a = np.array([[1, 1, 2]])
    b = np.array([[1, 2, 2]])
    np.testing.assert_array_equal(row_set_overlap(a, b), [2])


def test_unchanged_fraction_is_set_based():
    """Regression pin for the convergence check.

    A row whose neighbor *set* is unchanged must count as fully converged
    regardless of column order, and a single swapped neighbor must cost
    exactly one overlap unit — the positional comparison this replaced
    could mis-score both cases.
    """
    prev = np.array([[0, 1, 2, 3], [4, 5, 6, 7]])
    perm = np.array([[3, 2, 1, 0], [7, 6, 5, 4]])
    assert unchanged_fraction(prev, perm) == 1.0
    one_swap = np.array([[0, 1, 2, 9], [4, 5, 6, 7]])
    assert unchanged_fraction(prev, one_swap) == pytest.approx(7 / 8)
    disjoint = prev + 100
    assert unchanged_fraction(prev, disjoint) == 0.0


def test_recall_against_matches_loop(points):
    config = geometric_config()
    distance = GeometricDistance(points)
    table = all_nearest_neighbors(distance, config)
    exact = exhaustive_neighbors(distance, config.neighbors)
    hits = 0
    for i in range(points.shape[0]):
        hits += np.intersect1d(table.indices[i], exact.indices[i]).size
    assert table.recall_against(exact) == pytest.approx(hits / exact.indices.size)


# ---------------------------------------------------------------------------
# backend parity: bit-identical tables
# ---------------------------------------------------------------------------

def assert_tables_identical(a: NeighborTable, b: NeighborTable):
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.distances, b.distances)
    assert a.iterations == b.iterations
    assert a.converged == b.converged


class TestBackendParity:
    def test_geometric_pinned(self, points):
        config = geometric_config()
        distance = GeometricDistance(points)
        ref = all_nearest_neighbors(distance, config, backend="reference")
        blk = all_nearest_neighbors(distance, config, backend="blocked")
        assert_tables_identical(ref, blk)

    def test_gram_distance_pinned(self):
        matrix = make_gaussian_kernel_matrix(n=480, d=3, bandwidth=1.5, seed=3)
        config = geometric_config(distance=DistanceMetric.ANGLE, neighbors=6)
        distance = make_distance(matrix, config.distance)
        ref = all_nearest_neighbors(distance, config, backend="reference")
        blk = all_nearest_neighbors(distance, config, backend="blocked")
        assert_tables_identical(ref, blk)

    @needs_fork
    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_matches_blocked(self, points, workers):
        config = geometric_config(neighbor_workers=workers)
        distance = GeometricDistance(points)
        blk = all_nearest_neighbors(distance, config, backend="blocked")
        shd = all_nearest_neighbors(distance, config, backend="sharded")
        assert_tables_identical(blk, shd)

    @needs_fork
    def test_worker_count_never_changes_results(self, points):
        """The determinism contract: 1 worker ≡ N workers, bit for bit."""
        distance = GeometricDistance(points)
        tables = [
            all_nearest_neighbors(
                distance, geometric_config(neighbor_workers=w), backend="sharded"
            )
            for w in (1, 2, 4)
        ]
        for other in tables[1:]:
            assert_tables_identical(tables[0], other)

    def test_config_backend_field_dispatches(self, points):
        config = geometric_config(neighbor_backend="reference")
        distance = GeometricDistance(points)
        via_field = all_nearest_neighbors(distance, config)
        via_arg = all_nearest_neighbors(distance, config, backend="reference")
        assert_tables_identical(via_field, via_arg)

    def test_single_leaf_bypasses_to_exact(self, points):
        config = geometric_config(leaf_size=points.shape[0])
        distance = GeometricDistance(points)
        exact = exhaustive_neighbors(distance, config.neighbors)
        for backend in ("reference", "blocked", "sharded"):
            table = all_nearest_neighbors(distance, config, backend=backend)
            np.testing.assert_array_equal(table.indices, exact.indices)
            np.testing.assert_array_equal(table.distances, exact.distances)
            assert table.converged


# ---------------------------------------------------------------------------
# session integration: invalidation + persistence
# ---------------------------------------------------------------------------

class TestSessionIntegration:
    @pytest.fixture()
    def session(self):
        matrix = make_gaussian_kernel_matrix(n=240, d=3, bandwidth=1.5, seed=0)
        config = GOFMMConfig(
            leaf_size=32, max_rank=24, tolerance=1e-7, neighbors=8,
            num_neighbor_trees=3, budget=0.2, seed=0,
        )
        session = Session(matrix, config)
        session.compress()
        return session

    def test_backend_change_invalidates_neighbors(self, session):
        stale = session.stale_stages(neighbor_backend="reference")
        assert "neighbors" in stale
        assert "partition" not in stale

    def test_worker_knobs_invalidate_nothing(self, session):
        """Worker counts are execution knobs: same results, no rebuild."""
        assert session.stale_stages(neighbor_workers=8) == frozenset()
        assert session.stale_stages(compression_workers=8) == frozenset()

    @needs_fork
    def test_sharded_table_roundtrips_through_artifacts(self, tmp_path):
        matrix = make_gaussian_kernel_matrix(n=240, d=3, bandwidth=1.5, seed=0)
        config = GOFMMConfig(
            leaf_size=32, max_rank=24, tolerance=1e-7, neighbors=8,
            num_neighbor_trees=3, budget=0.2, seed=0,
            neighbor_backend="sharded", neighbor_workers=2,
        )
        saver = Session(matrix, config)
        _, built_neighbors, _ = saver.prepare()
        path = tmp_path / "artifacts.npz"
        saver.save_artifacts(path)

        loader = Session(matrix, config)
        loaded_stages = loader.load_artifacts(path)
        assert "neighbors" in loaded_stages
        _, loaded_neighbors, _ = loader.prepare()
        assert_tables_identical(built_neighbors.table, loaded_neighbors.table)
        # The sharded-built table equals a single-process blocked build bit
        # for bit (same session seed, workers are an execution knob).
        blocked_session = Session(
            matrix, config.replace(neighbor_backend="blocked", neighbor_workers=1)
        )
        _, blocked_neighbors, _ = blocked_session.prepare()
        np.testing.assert_array_equal(
            loaded_neighbors.table.indices, blocked_neighbors.table.indices
        )
        np.testing.assert_array_equal(
            loaded_neighbors.table.distances, blocked_neighbors.table.distances
        )
