"""Unit tests for the named matrix testbed registry."""

import numpy as np
import pytest

from repro.errors import MatrixDefinitionError
from repro.matrices import available_matrices, build_matrix, matrix_info
from repro.matrices.registry import MATRIX_GROUPS

ALL_NAMES = available_matrices()

# Matrices cheap enough to build densely in a unit test.
SMALL_BUILD_NAMES = [
    "K02", "K03", "K04", "K05", "K06", "K07", "K08", "K09", "K10", "K11",
    "K12", "K14", "K15", "K17", "K18", "G01", "G03", "G05", "covtype", "mnist",
]


class TestRegistryContents:
    def test_paper_testbed_present(self):
        for name in ["K02", "K03", "K06", "K15", "K17", "K18", "G01", "G05", "covtype", "higgs", "mnist"]:
            assert name in ALL_NAMES

    def test_info_available_for_every_matrix(self):
        for name in ALL_NAMES:
            info = matrix_info(name)
            assert info.name == name
            assert info.default_n >= 1024
            assert info.group in MATRIX_GROUPS

    def test_groups_partition_registry(self):
        grouped = sorted(name for names in MATRIX_GROUPS.values() for name in names)
        assert grouped == sorted(ALL_NAMES)

    def test_group_filter(self):
        graph_names = available_matrices(group="graph")
        assert set(graph_names) == {"G01", "G02", "G03", "G04", "G05"}

    def test_unknown_group_rejected(self):
        with pytest.raises(MatrixDefinitionError):
            available_matrices(group="nope")

    def test_unknown_matrix_rejected(self):
        with pytest.raises(MatrixDefinitionError):
            build_matrix("K99", 64)
        with pytest.raises(MatrixDefinitionError):
            matrix_info("K99")

    def test_too_small_size_rejected(self):
        with pytest.raises(MatrixDefinitionError):
            build_matrix("K04", 2)


@pytest.mark.parametrize("name", SMALL_BUILD_NAMES)
class TestBuiltMatrices:
    def test_size_and_spd_character(self, name):
        m = build_matrix(name, 72, seed=0)
        assert m.n == 72
        # Cheap SPD sanity check (positive diagonal, symmetric samples).
        m.validate_spd(sample=32)

    def test_coordinates_flag_matches_info(self, name):
        m = build_matrix(name, 48, seed=0)
        info = matrix_info(name)
        if info.has_coordinates:
            assert m.coordinates is not None
        else:
            assert m.coordinates is None


class TestDeterminism:
    @pytest.mark.parametrize("name", ["K04", "K12", "G03", "covtype"])
    def test_same_seed_same_matrix(self, name):
        a = build_matrix(name, 48, seed=5)
        b = build_matrix(name, 48, seed=5)
        idx = np.arange(16)
        assert np.allclose(a.entries(idx, idx), b.entries(idx, idx))


class TestSPDEigenvalues:
    @pytest.mark.parametrize("name", ["K02", "K04", "K10", "K15", "G03"])
    def test_strictly_positive_definite(self, name):
        m = build_matrix(name, 64, seed=0)
        eigenvalues = np.linalg.eigvalsh(m.to_dense())
        assert eigenvalues.min() > 0.0
