"""Unit tests for the balanced metric ball tree (Algorithm 2.1)."""

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.config import DistanceMetric
from repro.core.distances import GeometricDistance, make_distance
from repro.core.tree import build_tree, metric_split, random_split

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def tree_and_matrix():
    matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.5, seed=0)
    config = GOFMMConfig(leaf_size=25, max_rank=16, neighbors=4, distance=DistanceMetric.KERNEL)
    distance = make_distance(matrix, config.distance)
    tree = build_tree(matrix.n, config, distance)
    return tree, matrix, config


class TestStructure:
    def test_invariants(self, tree_and_matrix):
        tree, _, config = tree_and_matrix
        tree.check_invariants(config.leaf_size)

    def test_leaves_partition_indices(self, tree_and_matrix):
        tree, matrix, _ = tree_and_matrix
        union = np.sort(np.concatenate([leaf.indices for leaf in tree.leaves]))
        assert np.array_equal(union, np.arange(matrix.n))

    def test_complete_tree(self, tree_and_matrix):
        tree, _, _ = tree_and_matrix
        assert len(tree.leaves) == 2**tree.depth
        assert len(tree.nodes) == 2 ** (tree.depth + 1) - 1
        assert all(leaf.level == tree.depth for leaf in tree.leaves)

    def test_depth_minimal_for_leaf_size(self, tree_and_matrix):
        tree, matrix, config = tree_and_matrix
        assert matrix.n <= config.leaf_size * 2**tree.depth
        assert matrix.n > config.leaf_size * 2 ** (tree.depth - 1)

    def test_node_ids_are_positions(self, tree_and_matrix):
        tree, _, _ = tree_and_matrix
        for node_id, node in enumerate(tree.nodes):
            assert node.node_id == node_id

    def test_leaf_lookup(self, tree_and_matrix):
        tree, matrix, _ = tree_and_matrix
        for i in range(0, matrix.n, 17):
            leaf = tree.leaf_of(i)
            assert i in leaf.indices
        ids = tree.leaf_ids_of(np.arange(0, matrix.n, 17))
        assert all(tree.node(nid).is_leaf for nid in ids)

    def test_morton_ids_match_tree_paths(self, tree_and_matrix):
        tree, _, _ = tree_and_matrix
        for node in tree.nodes:
            if node.parent is not None:
                assert node.morton.parent() == node.parent.morton
                assert node.parent.morton.is_ancestor_of(node.morton)

    def test_permutation_is_a_permutation(self, tree_and_matrix):
        tree, matrix, _ = tree_and_matrix
        assert np.array_equal(np.sort(tree.permutation), np.arange(matrix.n))


class TestTraversals:
    def test_postorder_visits_children_first(self, tree_and_matrix):
        tree, _, _ = tree_and_matrix
        seen = set()
        for node in tree.postorder():
            if not node.is_leaf:
                left, right = node.children()
                assert left.node_id in seen and right.node_id in seen
            seen.add(node.node_id)
        assert len(seen) == len(tree.nodes)

    def test_preorder_visits_parents_first(self, tree_and_matrix):
        tree, _, _ = tree_and_matrix
        seen = set()
        for node in tree.preorder():
            if node.parent is not None:
                assert node.parent.node_id in seen
            seen.add(node.node_id)
        assert len(seen) == len(tree.nodes)

    def test_levels_grouping(self, tree_and_matrix):
        tree, _, _ = tree_and_matrix
        levels = tree.levels()
        assert len(levels[0]) == 1
        for depth, group in enumerate(levels):
            assert len(group) == 2**depth


class TestSplitting:
    def test_metric_split_balanced(self):
        pts = np.random.default_rng(0).standard_normal((101, 3))
        distance = GeometricDistance(pts)
        rng = np.random.default_rng(1)
        left, right = metric_split(np.arange(101), distance, rng, centroid_samples=8)
        assert abs(left.size - right.size) <= 1
        assert np.array_equal(np.sort(np.concatenate([left, right])), np.arange(101))

    def test_metric_split_separates_clusters(self):
        gen = np.random.default_rng(2)
        cluster_a = gen.standard_normal((40, 2))
        cluster_b = gen.standard_normal((40, 2)) + 50.0
        pts = np.vstack([cluster_a, cluster_b])
        order = gen.permutation(80)
        distance = GeometricDistance(pts[order])
        left, right = metric_split(np.arange(80), distance, np.random.default_rng(3), centroid_samples=8)
        labels = (order >= 40).astype(int)
        left_labels = labels[left]
        right_labels = labels[right]
        # Each side should be (almost) pure: the split recovers the two clusters.
        assert min(np.mean(left_labels), 1 - np.mean(left_labels)) < 0.05
        assert min(np.mean(right_labels), 1 - np.mean(right_labels)) < 0.05

    def test_metric_split_degenerate_points(self):
        pts = np.zeros((20, 2))
        distance = GeometricDistance(pts)
        left, right = metric_split(np.arange(20), distance, np.random.default_rng(0), centroid_samples=4)
        assert left.size == 10 and right.size == 10

    def test_metric_split_requires_two_indices(self):
        pts = np.zeros((3, 2))
        distance = GeometricDistance(pts)
        with pytest.raises(Exception):
            metric_split(np.array([1]), distance, np.random.default_rng(0), centroid_samples=2)

    def test_random_split_preserves_order(self):
        indices = np.array([5, 3, 9, 1, 7])
        left, right = random_split(indices, np.random.default_rng(0))
        assert np.array_equal(left, [5, 3])
        assert np.array_equal(right, [9, 1, 7])


class TestMetricFreeOrderings:
    def test_lexicographic_keeps_input_order(self):
        config = GOFMMConfig(leaf_size=16, distance=DistanceMetric.LEXICOGRAPHIC)
        tree = build_tree(64, config, distance=None)
        assert np.array_equal(tree.permutation, np.arange(64))

    def test_random_order_is_a_shuffle(self):
        config = GOFMMConfig(leaf_size=16, distance=DistanceMetric.RANDOM, seed=3)
        tree = build_tree(64, config, distance=None)
        assert not np.array_equal(tree.permutation, np.arange(64))
        assert np.array_equal(np.sort(tree.permutation), np.arange(64))

    def test_single_leaf_when_n_below_leaf_size(self):
        config = GOFMMConfig(leaf_size=128, distance=DistanceMetric.LEXICOGRAPHIC)
        tree = build_tree(50, config, distance=None)
        assert tree.depth == 0
        assert len(tree.leaves) == 1
        assert tree.leaves[0].size == 50
