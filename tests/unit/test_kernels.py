"""Unit tests for the kernel functions used by the K04–K10 and ML matrices."""

import numpy as np
import pytest

from repro.matrices.kernels import (
    CosineKernel,
    GaussianKernel,
    InverseMultiquadricKernel,
    LaplaceKernel,
    MaternKernel,
    PolynomialKernel,
    pairwise_sq_dists,
)

ALL_KERNELS = [
    GaussianKernel(bandwidth=1.0),
    GaussianKernel(bandwidth=0.3),
    LaplaceKernel(bandwidth=1.0),
    InverseMultiquadricKernel(shift=1.0, power=1.0),
    InverseMultiquadricKernel(shift=0.5, power=2.0),
    PolynomialKernel(gamma=0.5, coef0=1.0, degree=2),
    CosineKernel(shift=1e-2),
    MaternKernel(bandwidth=1.0),
]


def points(n=40, d=4, seed=0):
    return np.random.default_rng(seed).standard_normal((n, d))


class TestPairwiseSqDists:
    def test_matches_direct_computation(self):
        x = points(15, 3, 1)
        y = points(12, 3, 2)
        d2 = pairwise_sq_dists(x, y)
        direct = ((x[:, None, :] - y[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(d2, direct, atol=1e-10)

    def test_non_negative(self):
        x = points(30, 5, 3)
        assert np.all(pairwise_sq_dists(x, x) >= 0.0)

    def test_zero_on_diagonal(self):
        x = points(20, 4, 4)
        assert np.allclose(np.diag(pairwise_sq_dists(x, x)), 0.0, atol=1e-9)


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: type(k).__name__ + str(getattr(k, "bandwidth", "")))
class TestKernelProperties:
    def test_symmetry(self, kernel):
        x = points(25, 4, 5)
        block = kernel(x, x)
        assert np.allclose(block, block.T, atol=1e-10)

    def test_diagonal_consistent(self, kernel):
        x = points(20, 4, 6)
        block = kernel(x, x)
        assert np.allclose(np.diag(block), kernel.diagonal(x), atol=1e-8)

    def test_positive_semidefinite_on_sample(self, kernel):
        x = points(30, 4, 7)
        block = kernel(x, x)
        eigenvalues = np.linalg.eigvalsh(0.5 * (block + block.T))
        assert eigenvalues.min() > -1e-7 * max(1.0, abs(eigenvalues.max()))

    def test_rectangular_shape(self, kernel):
        x = points(8, 4, 8)
        y = points(5, 4, 9)
        assert kernel(x, y).shape == (8, 5)


class TestSpecificValues:
    def test_gaussian_at_zero_distance(self):
        x = np.zeros((1, 3))
        assert GaussianKernel(2.0)(x, x)[0, 0] == pytest.approx(1.0)

    def test_gaussian_bandwidth_effect(self):
        x = np.zeros((1, 2))
        y = np.ones((1, 2))
        narrow = GaussianKernel(0.1)(x, y)[0, 0]
        wide = GaussianKernel(10.0)(x, y)[0, 0]
        assert narrow < 1e-10
        assert wide > 0.98

    def test_laplace_decay_slower_than_gaussian(self):
        x = np.zeros((1, 1))
        y = np.full((1, 1), 3.0)
        assert LaplaceKernel(1.0)(x, y)[0, 0] > GaussianKernel(1.0)(x, y)[0, 0]

    def test_inverse_multiquadric_diagonal(self):
        k = InverseMultiquadricKernel(shift=2.0, power=1.0)
        x = points(5, 3, 10)
        assert np.allclose(k.diagonal(x), 0.5)

    def test_polynomial_known_value(self):
        k = PolynomialKernel(gamma=1.0, coef0=1.0, degree=2)
        x = np.array([[1.0, 2.0]])
        y = np.array([[3.0, 4.0]])
        assert k(x, y)[0, 0] == pytest.approx((1 * 3 + 2 * 4 + 1.0) ** 2)

    def test_cosine_bounded(self):
        k = CosineKernel()
        x = points(20, 6, 11)
        block = k(x, x)
        assert np.all(block <= 1.0 + 1e-10)
        assert np.all(block >= -1.0 - 1e-10)

    def test_cosine_handles_zero_vector(self):
        k = CosineKernel()
        x = np.vstack([np.zeros(3), np.ones(3)])
        block = k(x, x)
        assert np.all(np.isfinite(block))
