"""Unit tests for the packed evaluation plan (the "planned" matvec engine).

The reference engine of :mod:`repro.core.evaluate` is the correctness
oracle: every test here asserts that the planned engine reproduces it to
1e-10 across kernels, budgets (HSS and FMM), and right-hand-side shapes.
"""

import numpy as np
import pytest

from repro import ConfigurationError, EvaluationError, GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.core.evaluate import EvaluationCounters, evaluate
from repro.core.plan import EvaluationPlan, build_plan, evaluate_planned

from ..conftest import make_gaussian_kernel_matrix, make_random_spd


def _config(budget: float, **overrides) -> GOFMMConfig:
    base = dict(
        leaf_size=28, max_rank=28, tolerance=1e-9, neighbors=8,
        budget=budget, num_neighbor_trees=4, distance=DistanceMetric.KERNEL, seed=0,
    )
    base.update(overrides)
    return GOFMMConfig(**base)


@pytest.fixture(scope="module")
def fmm_pair():
    matrix = make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.5, seed=0)
    return matrix, compress(matrix, _config(budget=0.3))


@pytest.fixture(scope="module")
def hss_pair():
    matrix = make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.5, seed=0)
    return matrix, compress(matrix, _config(budget=0.0))


class TestEquivalence:
    @pytest.mark.parametrize("budget", [0.0, 0.15, 0.5])
    def test_matches_reference_across_budgets(self, budget):
        matrix = make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.5, seed=0)
        cm = compress(matrix, _config(budget=budget))
        w = np.random.default_rng(0).standard_normal((matrix.n, 4))
        assert np.allclose(evaluate_planned(cm, w), evaluate(cm, w), atol=1e-10)

    def test_single_vector(self, fmm_pair):
        matrix, cm = fmm_pair
        w = np.random.default_rng(1).standard_normal(matrix.n)
        planned = evaluate_planned(cm, w)
        assert planned.shape == (matrix.n,)
        assert np.allclose(planned, evaluate(cm, w), atol=1e-10)

    def test_multi_rhs(self, fmm_pair):
        matrix, cm = fmm_pair
        w = np.random.default_rng(2).standard_normal((matrix.n, 7))
        planned = evaluate_planned(cm, w)
        assert planned.shape == (matrix.n, 7)
        assert np.allclose(planned, evaluate(cm, w), atol=1e-10)

    def test_hss_case(self, hss_pair):
        matrix, cm = hss_pair
        w = np.random.default_rng(3).standard_normal((matrix.n, 3))
        assert np.allclose(evaluate_planned(cm, w), evaluate(cm, w), atol=1e-10)

    def test_unstructured_matrix(self):
        matrix = make_random_spd(n=96, seed=2)
        cm = compress(matrix, _config(budget=0.25, leaf_size=24, max_rank=24, distance=DistanceMetric.ANGLE))
        w = np.random.default_rng(4).standard_normal((96, 2))
        assert np.allclose(evaluate_planned(cm, w), evaluate(cm, w), atol=1e-10)

    @pytest.mark.parametrize("name", ["gaussian-narrow", "gaussian-wide"])
    def test_across_kernels(self, name):
        bandwidth = 0.6 if name == "gaussian-narrow" else 2.5
        matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=bandwidth, seed=5)
        cm = compress(matrix, _config(budget=0.2))
        w = np.random.default_rng(5).standard_normal((200, 3))
        assert np.allclose(evaluate_planned(cm, w), evaluate(cm, w), atol=1e-10)

    def test_matches_explicit_dense_form(self, fmm_pair):
        matrix, cm = fmm_pair
        w = np.random.default_rng(6).standard_normal((matrix.n, 2))
        assert np.allclose(evaluate_planned(cm, w), cm.to_dense() @ w, atol=1e-8)

    def test_uncached_blocks(self):
        """The plan packs blocks on demand when compression skipped caching."""
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.2, seed=6)
        cm = compress(matrix, _config(budget=0.2, leaf_size=25, max_rank=20,
                                      cache_near_blocks=False, cache_far_blocks=False))
        w = np.random.default_rng(7).standard_normal(150)
        assert np.allclose(evaluate_planned(cm, w), evaluate(cm, w), atol=1e-10)

    def test_uncached_blocks_default_to_streamed(self):
        """Memory-bounded configs must not be silently packed by the default engine."""
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.2, seed=6)
        cm = compress(matrix, _config(budget=0.2, leaf_size=25, max_rank=20,
                                      cache_near_blocks=False, cache_far_blocks=False))
        assert cm.default_engine() == "streamed"
        cm.matvec(np.zeros(150))
        assert cm._plan is None  # default matvec did not build a packed plan
        # explicit opt-in still packs, and flips the default back to planned
        cm.matvec(np.zeros(150), engine="planned")
        assert cm._plan is not None
        assert cm.default_engine() == "planned"


class TestEngineSelection:
    def test_matvec_engine_argument(self, fmm_pair):
        matrix, cm = fmm_pair
        w = np.random.default_rng(8).standard_normal(matrix.n)
        assert np.allclose(cm.matvec(w, engine="planned"), cm.matvec(w, engine="reference"), atol=1e-10)

    def test_unknown_engine_rejected(self, fmm_pair):
        _, cm = fmm_pair
        with pytest.raises(EvaluationError):
            cm.matvec(np.zeros(cm.n), engine="warp-drive")

    def test_config_engine_default(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.2, seed=9)
        reference_cm = compress(matrix, _config(budget=0.2, leaf_size=25, evaluation_engine="reference"))
        w = np.random.default_rng(9).standard_normal(150)
        # default engine comes from the config; explicit argument overrides it
        assert np.allclose(reference_cm.matvec(w), reference_cm.matvec(w, engine="planned"), atol=1e-10)

    def test_invalid_engine_config_rejected(self):
        with pytest.raises(ConfigurationError):
            GOFMMConfig(evaluation_engine="vectorized")

    def test_prebuild_plan_phase_reported(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.2, seed=10)
        cm, report = compress(matrix, _config(budget=0.2, leaf_size=25, prebuild_plan=True), return_report=True)
        assert "plan" in report.phase_seconds
        assert cm._plan is not None


class TestPlanStructure:
    def test_plan_cached_and_rebuildable(self, fmm_pair):
        _, cm = fmm_pair
        plan = cm.plan()
        assert cm.plan() is plan
        assert cm.plan(rebuild=True) is not plan
        assert isinstance(plan, EvaluationPlan)

    def test_csr_lists_match_tree(self, fmm_pair):
        _, cm = fmm_pair
        plan = cm.plan()
        assert plan.near_indptr[-1] == plan.near_cols.size == cm.lists.total_near_pairs()
        assert plan.far_indptr[-1] == plan.far_cols.size == cm.lists.total_far_pairs()
        for i, leaf in enumerate(cm.tree.leaves):
            cols = plan.near_cols[plan.near_indptr[i] : plan.near_indptr[i + 1]]
            assert list(cols) == list(leaf.near)
        for node in cm.tree.nodes:
            cols = plan.far_cols[plan.far_indptr[node.node_id] : plan.far_indptr[node.node_id + 1]]
            assert list(cols) == list(node.far)

    def test_workspace_offsets_disjoint(self, fmm_pair):
        _, cm = fmm_pair
        plan = cm.plan()
        spans = []
        for node in cm.tree.nodes:
            off = plan.skel_offset[node.node_id]
            if off >= 0:
                spans.append((off, off + node.skeleton_rank))
        spans.sort()
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0
        assert spans[-1][1] <= plan.workspace_rows

    def test_scatter_targets_unique_within_segment(self, fmm_pair):
        """Rounds must leave no duplicate output row inside any one segment."""
        _, cm = fmm_pair
        plan = cm.plan()
        for seg in plan.s2s_segments:
            # slot segments scatter whole workspace blocks, row segments rows
            flat = getattr(seg, "dst_rows", getattr(seg, "dst_slots", None)).ravel()
            assert flat.size == np.unique(flat).size
        for seg in plan.l2l_segments:
            flat = seg.dst.ravel()
            assert flat.size == np.unique(flat).size

    def test_hss_plan_has_no_offdiagonal_l2l(self, hss_pair):
        _, cm = hss_pair
        plan = cm.plan()
        # budget 0: the direct part is exactly the diagonal leaf blocks
        assert plan.near_cols.size == len(cm.tree.leaves)

    def test_stages_cover_all_segments(self, fmm_pair):
        _, cm = fmm_pair
        plan = cm.plan()
        staged = sum(len(stage) for _, stage in plan.stages())
        assert staged == plan.num_segments > 0

    def test_plan_report(self, fmm_pair):
        _, cm = fmm_pair
        report = cm.plan_report()
        assert report["segments"] > 0
        assert report["packed_entries"] > 0
        assert report["workspace_rows"] == cm.plan().workspace_rows


class TestCounters:
    def test_counters_populated_and_scale_with_rhs(self, fmm_pair):
        matrix, cm = fmm_pair
        c1, c4 = EvaluationCounters(), EvaluationCounters()
        gen = np.random.default_rng(11)
        cm.plan().execute(gen.standard_normal((matrix.n, 1)), counters=c1)
        cm.plan().execute(gen.standard_normal((matrix.n, 4)), counters=c4)
        assert c1.n2s > 0 and c1.s2s > 0 and c1.s2n > 0 and c1.l2l > 0
        assert c4.total == pytest.approx(4.0 * c1.total, rel=1e-12)

    def test_planned_flops_not_more_than_reference(self):
        """Dead-branch pruning means an unpadded plan never outworks the oracle."""
        matrix = make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.5, seed=0)
        cm = compress(matrix, _config(budget=0.3, plan_rank_bucketing="none"))
        ref, planned = EvaluationCounters(), EvaluationCounters()
        w = np.random.default_rng(12).standard_normal((matrix.n, 2))
        evaluate(cm, w, counters=ref)
        evaluate_planned(cm, w, counters=planned)
        assert planned.total <= ref.total + 1e-9

    def test_bucketing_defragments_adaptive_plans(self):
        """pow2 rank padding must not create more segments than exact packing."""
        matrix = make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.5, seed=0)
        cfg = _config(budget=0.3, tolerance=1e-4, max_rank=24)
        padded = compress(matrix, cfg).plan()
        exact = compress(matrix, cfg.replace(plan_rank_bucketing="none")).plan()
        assert padded.num_segments <= exact.num_segments
        w = np.random.default_rng(3).standard_normal((matrix.n, 2))
        assert np.allclose(padded.execute(w), exact.execute(w), atol=1e-10)

    def test_bucketed_flops_bounded_by_padding_factor(self, fmm_pair):
        """pow2 padding costs at most 2x per rank dimension over the oracle."""
        matrix, cm = fmm_pair
        ref, planned = EvaluationCounters(), EvaluationCounters()
        w = np.random.default_rng(12).standard_normal((matrix.n, 2))
        evaluate(cm, w, counters=ref)
        evaluate_planned(cm, w, counters=planned)
        assert planned.total <= 4.0 * ref.total + 1e-9


class TestValidation:
    def test_wrong_length_rejected(self, fmm_pair):
        _, cm = fmm_pair
        with pytest.raises(EvaluationError):
            evaluate_planned(cm, np.zeros(cm.n + 1))

    def test_build_plan_direct(self, fmm_pair):
        _, cm = fmm_pair
        plan = build_plan(cm)
        w = np.random.default_rng(13).standard_normal((cm.n, 2))
        assert np.allclose(plan.execute(w), evaluate(cm, w), atol=1e-10)


class TestReentrancy:
    """Concurrent matvecs on one plan: per-call pooled workspaces, no sharing."""

    def test_concurrent_matvecs_bit_identical_to_alone(self, fmm_pair):
        import threading

        matrix, cm = fmm_pair
        rng = np.random.default_rng(20)
        vectors = rng.standard_normal((8, matrix.n, 2))
        expected = [cm.matvec(v, engine="planned") for v in vectors]
        results = [None] * len(vectors)
        barrier = threading.Barrier(len(vectors))

        def run(i):
            barrier.wait(timeout=30)
            results[i] = cm.matvec(vectors[i], engine="planned")

        threads = [threading.Thread(target=run, args=(i,)) for i in range(len(vectors))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got, want in zip(results, expected):
            assert np.array_equal(got, want)

    def test_workspace_pool_reuses_buffers(self, fmm_pair):
        _, cm = fmm_pair
        plan = cm.plan()
        w = np.random.default_rng(21).standard_normal((cm.n, 3))
        plan.execute(w)
        assert plan.workspace_pool_size() >= 1
        pooled = plan._workspace_pool[-1][0]
        plan.execute(w)  # same width: the pooled pair is taken and returned
        assert plan._workspace_pool[-1][0] is pooled

    def test_pool_is_bounded(self, fmm_pair):
        _, cm = fmm_pair
        plan = cm.plan()
        contexts = [plan.new_context(np.zeros((cm.n, 1))) for _ in range(2 * plan.WORKSPACE_POOL_MAX)]
        for ctx in contexts:
            plan.release_context(ctx)
        assert plan.workspace_pool_size() <= plan.WORKSPACE_POOL_MAX

    def test_released_context_is_inert(self, fmm_pair):
        _, cm = fmm_pair
        plan = cm.plan()
        ctx = plan.new_context(np.zeros((cm.n, 1)))
        plan.release_context(ctx)
        assert ctx.wtil is None and ctx.util is None
        plan.release_context(ctx)  # double release is a no-op
