"""Unit tests for the norm / error estimators behind the ε2 metric."""

import numpy as np
import pytest

from repro.linalg import relative_frobenius_error, sampled_spectral_norm
from repro.linalg.norms import power_method_norm, sampled_relative_error


class TestRelativeFrobeniusError:
    def test_zero_error(self):
        a = np.random.default_rng(0).standard_normal((10, 3))
        assert relative_frobenius_error(a, a) == 0.0

    def test_known_value(self):
        exact = np.ones((4, 1))
        approx = np.ones((4, 1)) * 1.5
        assert relative_frobenius_error(approx, exact) == pytest.approx(0.5)

    def test_zero_denominator(self):
        approx = np.ones((3, 1))
        assert relative_frobenius_error(approx, np.zeros((3, 1))) == pytest.approx(np.sqrt(3.0))


class TestSampledRelativeError:
    def test_matches_exact_when_all_rows_sampled(self):
        gen = np.random.default_rng(1)
        k = gen.standard_normal((50, 50))
        k = k @ k.T
        w = gen.standard_normal((50, 4))
        exact = k @ w
        approx = exact + 1e-3 * gen.standard_normal(exact.shape)
        sampled = sampled_relative_error(approx, lambda rows: k[rows], w, num_samples=50, rng=gen)
        full = relative_frobenius_error(approx, exact)
        assert sampled == pytest.approx(full, rel=1e-12)

    def test_subsampled_error_close_to_full(self):
        gen = np.random.default_rng(2)
        k = gen.standard_normal((200, 200))
        k = k @ k.T
        w = gen.standard_normal((200, 2))
        exact = k @ w
        approx = exact * (1.0 + 1e-4)
        sampled = sampled_relative_error(approx, lambda rows: k[rows], w, num_samples=50, rng=gen)
        assert sampled == pytest.approx(1e-4, rel=0.2)


class TestPowerMethod:
    def test_spectral_norm_of_diagonal(self):
        a = np.diag([5.0, 1.0, 0.1])
        assert sampled_spectral_norm(a, iterations=50) == pytest.approx(5.0, rel=1e-6)

    def test_matches_numpy_two_norm(self):
        gen = np.random.default_rng(3)
        a = gen.standard_normal((40, 40))
        a = a @ a.T
        estimate = sampled_spectral_norm(a, iterations=100, rng=gen)
        assert estimate == pytest.approx(np.linalg.norm(a, 2), rel=1e-4)

    def test_zero_operator(self):
        assert power_method_norm(lambda x: np.zeros_like(x), 7) == 0.0
