"""Unit tests for Task / TaskGraph."""

import pytest

from repro import SchedulingError
from repro.runtime import Task, TaskGraph


def diamond_graph():
    """a -> b, a -> c, b -> d, c -> d with unit costs."""
    graph = TaskGraph()
    for name in "abcd":
        graph.add_task(Task(task_id=name, kind="N2S", node_id=0, flops=1.0))
    graph.add_dependency("a", "b")
    graph.add_dependency("a", "c")
    graph.add_dependency("b", "d")
    graph.add_dependency("c", "d")
    return graph


class TestConstruction:
    def test_duplicate_task_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task(task_id="x", kind="N2S", node_id=0))
        with pytest.raises(SchedulingError):
            graph.add_task(Task(task_id="x", kind="N2S", node_id=1))

    def test_dependency_on_unknown_task_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task(task_id="x", kind="N2S", node_id=0))
        with pytest.raises(SchedulingError):
            graph.add_dependency("x", "y")

    def test_self_dependency_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task(task_id="x", kind="N2S", node_id=0))
        with pytest.raises(SchedulingError):
            graph.add_dependency("x", "x")


class TestQueries:
    def test_roots_and_neighbors(self):
        graph = diamond_graph()
        assert graph.roots() == ["a"]
        assert graph.successors("a") == {"b", "c"}
        assert graph.predecessors("d") == {"b", "c"}
        assert len(graph) == 4

    def test_total_flops_and_kinds(self):
        graph = diamond_graph()
        assert graph.total_flops() == pytest.approx(4.0)
        assert graph.kinds() == {"N2S"}
        assert len(graph.tasks_of_kind("N2S")) == 4

    def test_subset(self):
        graph = TaskGraph()
        graph.add_task(Task(task_id="n", kind="N2S", node_id=0))
        graph.add_task(Task(task_id="s", kind="S2S", node_id=0))
        graph.add_dependency("n", "s")
        sub = graph.subset({"N2S"})
        assert len(sub) == 1
        assert "s" not in sub


class TestTopology:
    def test_topological_order_respects_edges(self):
        graph = diamond_graph()
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        graph = diamond_graph()
        graph.add_dependency("d", "a")
        with pytest.raises(SchedulingError):
            graph.validate()

    def test_critical_path_diamond(self):
        graph = diamond_graph()
        assert graph.critical_path_time(lambda task: task.flops) == pytest.approx(3.0)

    def test_critical_path_with_heterogeneous_costs(self):
        graph = diamond_graph()
        graph.tasks["c"].flops = 10.0
        assert graph.critical_path_time(lambda task: task.flops) == pytest.approx(12.0)

    def test_empty_graph(self):
        graph = TaskGraph()
        assert graph.topological_order() == []
        assert graph.critical_path_time(lambda t: 1.0) == 0.0
