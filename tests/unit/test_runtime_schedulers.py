"""Unit tests for the scheduler simulations (level-by-level, omp-task, HEFT)."""

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.runtime import (
    CostModel,
    HEFTScheduler,
    LevelByLevelScheduler,
    OmpTaskScheduler,
    build_evaluation_dag,
    haswell_24,
    haswell_p100,
    simulate_all_schedulers,
)

from ..conftest import make_gaussian_kernel_matrix

SCHEDULERS = [LevelByLevelScheduler(), OmpTaskScheduler(), HEFTScheduler()]


@pytest.fixture(scope="module")
def evaluation_dag():
    matrix = make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.2, seed=0)
    config = GOFMMConfig(
        leaf_size=25, max_rank=20, tolerance=1e-7, neighbors=6,
        budget=0.3, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=0,
    )
    compressed = compress(matrix, config)
    cost = CostModel(leaf_size=25, rank=20, num_rhs=8)
    return build_evaluation_dag(compressed.tree, cost)


@pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
class TestScheduleValidity:
    def test_all_tasks_scheduled_exactly_once(self, scheduler, evaluation_dag):
        result = scheduler.schedule(evaluation_dag, haswell_24())
        scheduled_ids = [entry.task_id for entry in result.timeline]
        assert sorted(scheduled_ids) == sorted(evaluation_dag.tasks)

    def test_dependencies_respected(self, scheduler, evaluation_dag):
        result = scheduler.schedule(evaluation_dag, haswell_24())
        finish = {entry.task_id: entry.finish for entry in result.timeline}
        start = {entry.task_id: entry.start for entry in result.timeline}
        for tid in evaluation_dag.tasks:
            for pred in evaluation_dag.predecessors(tid):
                assert finish[pred] <= start[tid] + 1e-12

    def test_no_worker_overlap(self, scheduler, evaluation_dag):
        result = scheduler.schedule(evaluation_dag, haswell_24())
        by_worker: dict[str, list] = {}
        for entry in result.timeline:
            by_worker.setdefault(entry.worker, []).append((entry.start, entry.finish))
        for intervals in by_worker.values():
            intervals.sort()
            for (s0, f0), (s1, f1) in zip(intervals, intervals[1:]):
                assert f0 <= s1 + 1e-12

    def test_makespan_at_least_critical_path(self, scheduler, evaluation_dag):
        machine = haswell_24()
        result = scheduler.schedule(evaluation_dag, machine)
        critical = evaluation_dag.critical_path_time(machine.best_case_seconds)
        assert result.makespan >= critical - 1e-12

    def test_makespan_at_least_work_bound(self, scheduler, evaluation_dag):
        machine = haswell_24()
        result = scheduler.schedule(evaluation_dag, machine)
        total_best = sum(machine.best_case_seconds(t) for t in evaluation_dag.tasks.values())
        assert result.makespan >= total_best / machine.num_workers - 1e-12

    def test_utilization_in_range(self, scheduler, evaluation_dag):
        result = scheduler.schedule(evaluation_dag, haswell_24())
        assert 0.0 < result.utilization <= 1.0 + 1e-9

    def test_gpu_machine_supported(self, scheduler, evaluation_dag):
        result = scheduler.schedule(evaluation_dag, haswell_p100())
        assert sorted(e.task_id for e in result.timeline) == sorted(evaluation_dag.tasks)
        # GPU only ever runs eligible tasks.
        gpu_entries = [e for e in result.timeline if e.worker == "p100"]
        for entry in gpu_entries:
            assert evaluation_dag.tasks[entry.task_id].gpu_eligible


class TestSchedulerComparison:
    def test_out_of_order_beats_level_by_level(self, evaluation_dag):
        results = simulate_all_schedulers(evaluation_dag, haswell_24())
        assert results["heft"].makespan <= results["level-by-level"].makespan * 1.001

    def test_heft_not_much_worse_than_omp(self, evaluation_dag):
        results = simulate_all_schedulers(evaluation_dag, haswell_24())
        assert results["heft"].makespan <= results["omp-task"].makespan * 1.25

    def test_more_workers_never_hurt_much(self, evaluation_dag):
        scheduler = HEFTScheduler()
        small = scheduler.schedule(evaluation_dag, haswell_24().with_workers(4))
        large = scheduler.schedule(evaluation_dag, haswell_24().with_workers(24))
        assert large.makespan <= small.makespan * 1.05

    def test_strong_scaling_saturates(self, evaluation_dag):
        """Speedup grows with cores but is bounded by the critical path (the paper's #4 case)."""
        scheduler = HEFTScheduler()
        machine = haswell_24()
        t1 = scheduler.schedule(evaluation_dag, machine.with_workers(1)).makespan
        t24 = scheduler.schedule(evaluation_dag, machine.with_workers(24)).makespan
        speedup = t1 / t24
        assert 1.0 < speedup <= 24.0 + 1e-9
        critical = evaluation_dag.critical_path_time(machine.best_case_seconds)
        assert t24 >= critical - 1e-12

    def test_gflops_report(self, evaluation_dag):
        result = HEFTScheduler().schedule(evaluation_dag, haswell_24())
        assert result.gflops > 0.0
        assert 0.0 < result.efficiency_vs_peak(haswell_24()) <= 1.0
