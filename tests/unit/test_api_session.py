"""Unit tests for the staged session API (repro.api.Session)."""

import numpy as np
import pytest

import importlib

from repro import GOFMMConfig

# ``repro.core`` re-exports the ``compress`` function, which shadows the
# submodule in ``import repro.core.compress as ...`` — resolve the module.
pipeline = importlib.import_module("repro.core.compress")
from repro.api import (
    STAGE_FIELDS,
    STAGE_ORDER,
    Session,
    changed_fields,
    invalidated_stages,
)
from repro.core.compress import compress as monolithic_compress
from repro.errors import CompressionError
from repro.gofmm import compress as gofmm_compress
from repro.matrices import KernelMatrix
from repro.matrices.kernels import GaussianKernel

from ..conftest import make_gaussian_kernel_matrix

COMMON = dict(leaf_size=32, max_rank=24, tolerance=1e-7, neighbors=8, num_neighbor_trees=3, seed=0)


@pytest.fixture()
def matrix():
    return make_gaussian_kernel_matrix(n=240, d=3, bandwidth=1.5, seed=0)


def make_session(matrix, **overrides) -> Session:
    params = dict(COMMON, budget=0.2)
    params.update(overrides)
    return Session(matrix, GOFMMConfig(**params))


class TestInvalidationMatrix:
    """Which config fields rebuild which artifacts (the stage-invalidation matrix)."""

    @pytest.mark.parametrize(
        "field,expected",
        [
            ("tolerance", {"skeletons", "blocks", "plan"}),
            ("adaptive_rank", {"skeletons", "blocks", "plan"}),
            ("secure_accuracy", {"skeletons", "blocks", "plan"}),
            ("dtype", {"skeletons", "blocks", "plan"}),
            ("budget", {"interactions", "skeletons", "blocks", "plan"}),
            ("symmetrize_lists", {"interactions", "skeletons", "blocks", "plan"}),
            ("max_rank", {"interactions", "skeletons", "blocks", "plan"}),
            ("sample_size", {"interactions", "skeletons", "blocks", "plan"}),
            ("oversampling", {"interactions", "skeletons", "blocks", "plan"}),
            ("neighbors", {"neighbors", "interactions", "skeletons", "blocks", "plan"}),
            ("num_neighbor_trees", {"neighbors", "interactions", "skeletons", "blocks", "plan"}),
            ("neighbor_accuracy_target", {"neighbors", "interactions", "skeletons", "blocks", "plan"}),
            ("neighbor_backend", {"neighbors", "interactions", "skeletons", "blocks", "plan"}),
            # Worker counts are execution knobs: all backends are
            # worker-count deterministic, so nothing is invalidated.
            ("neighbor_workers", set()),
            ("compression_workers", set()),
            ("centroid_samples", {"partition", "interactions", "skeletons", "blocks", "plan"}),
            ("leaf_size", set(STAGE_ORDER)),
            ("distance", set(STAGE_ORDER)),
            ("seed", set(STAGE_ORDER)),
            ("cache_near_blocks", {"blocks", "plan"}),
            ("cache_far_blocks", {"blocks", "plan"}),
            ("compression_backend", {"skeletons", "blocks", "plan"}),
            ("evaluation_engine", {"plan"}),
            ("prebuild_plan", {"plan"}),
            ("plan_rank_bucketing", {"plan"}),
            ("streaming_chunk_bytes", {"plan"}),
        ],
    )
    def test_single_field_invalidation(self, field, expected):
        assert invalidated_stages({field}) == frozenset(expected)

    def test_no_change_invalidates_nothing(self):
        assert invalidated_stages(frozenset()) == frozenset()

    def test_every_stage_field_is_a_config_field(self):
        fields = set(GOFMMConfig.__dataclass_fields__)
        for stage, deps in STAGE_FIELDS.items():
            assert deps <= fields, f"stage {stage} depends on unknown fields {deps - fields}"

    def test_changed_fields_detects_differences(self):
        a = GOFMMConfig(**COMMON, budget=0.1)
        b = a.replace(budget=0.2, tolerance=1e-3)
        assert changed_fields(a, b) == frozenset({"budget", "tolerance"})


class TestSessionReuse:
    def test_sweep_reuses_partition_and_ann(self, matrix, monkeypatch):
        """tolerance/budget/max_rank sweeps run zero ANN searches and zero tree builds."""
        session = make_session(matrix)
        session.compress()

        ann_calls = []
        tree_calls = []
        original_ann = pipeline.all_nearest_neighbors
        original_tree = pipeline.build_tree
        monkeypatch.setattr(
            pipeline, "all_nearest_neighbors", lambda *a, **k: ann_calls.append(1) or original_ann(*a, **k)
        )
        monkeypatch.setattr(
            pipeline, "build_tree", lambda *a, **k: tree_calls.append(1) or original_tree(*a, **k)
        )

        session.recompress(tolerance=1e-3)
        session.recompress(budget=0.05)
        session.recompress(max_rank=16)
        session.recompress(tolerance=1e-5, budget=0.1, max_rank=20)

        assert ann_calls == [], "recompress must not re-run the ANN search"
        assert tree_calls == [], "recompress must not rebuild the ball tree"
        assert session.stage_builds["partition"] == 1
        assert session.stage_builds["neighbors"] == 1
        assert session.stage_builds["skeletons"] == 5

    def test_tolerance_change_reuses_interactions(self, matrix):
        session = make_session(matrix)
        session.compress()
        session.recompress(tolerance=1e-4)
        assert session.last_built == ("skeletons", "blocks", "plan")
        assert session.last_reused == ("partition", "neighbors", "interactions")

    def test_budget_change_rebuilds_interactions(self, matrix):
        session = make_session(matrix)
        session.compress()
        session.recompress(budget=0.4)
        assert "interactions" in session.last_built
        assert "partition" in session.last_reused
        assert "neighbors" in session.last_reused

    def test_leaf_size_change_rebuilds_everything(self, matrix):
        session = make_session(matrix)
        session.compress()
        session.recompress(leaf_size=24)
        assert session.last_built == STAGE_ORDER

    def test_identical_recompress_reuses_everything(self, matrix):
        session = make_session(matrix)
        op1 = session.compress()
        op2 = session.recompress()
        assert session.last_built == ()
        assert op2.compressed is op1.compressed

    def test_report_marks_reused_phases(self, matrix):
        session = make_session(matrix)
        cold = session.compress()
        assert cold.report.reused_phases == []
        warm = session.recompress(tolerance=1e-3)
        assert "neighbors" in warm.report.reused_phases
        assert "tree" in warm.report.reused_phases
        assert "skeletonization" in warm.report.phase_seconds
        assert "neighbors" not in warm.report.phase_seconds

    def test_stale_stages_introspection(self, matrix):
        session = make_session(matrix)
        assert session.stale_stages() == frozenset(STAGE_ORDER)  # nothing built yet
        session.compress()
        assert session.stale_stages() == frozenset()
        assert session.stale_stages(tolerance=1e-3) == frozenset({"skeletons", "blocks", "plan"})
        assert "partition" in session.stale_stages(leaf_size=16)

    def test_invalidate_drops_stage_and_downstream(self, matrix):
        session = make_session(matrix)
        session.compress()
        dropped = session.invalidate("skeletons")
        assert dropped == frozenset({"skeletons", "blocks", "plan"})
        assert session.artifact("skeletons") is None
        assert session.artifact("partition") is not None
        session.compress()
        assert session.last_built == ("skeletons", "blocks", "plan")
        assert session.last_reused == ("partition", "neighbors", "interactions")
        with pytest.raises(CompressionError, match="unknown stage"):
            session.invalidate("nonsense")
        assert session.invalidate() == frozenset(STAGE_ORDER)
        assert session.artifact("partition") is None

    def test_artifact_accessors(self, matrix):
        session = make_session(matrix)
        assert session.artifact("partition") is None
        session.compress()
        partition = session.artifact("partition")
        assert partition.num_leaves == len(partition.tree.leaves)
        assert session.artifact("neighbors").table is not None
        assert session.artifact("skeletons").average_rank > 0

    def test_partition_artifact_stays_pristine(self, matrix):
        """The cached tree must never inherit skeletons from a compression."""
        session = make_session(matrix)
        session.compress()
        tree = session.artifact("partition").tree
        assert all(node.skeleton is None for node in tree.nodes)
        assert all(node.coeffs is None for node in tree.nodes)
        assert all(not node.near and not node.far for node in tree.nodes)


class TestAbortedPassConsistency:
    def test_failed_recompress_does_not_poison_downstream_caches(self, matrix, monkeypatch):
        """If a pass rebuilds interactions and then aborts, a retry must rebuild
        skeletons/blocks/plan instead of silently reusing stale ones."""
        session = make_session(matrix, budget=0.05)
        session.compress()

        original = pipeline.run_skeletons_stage
        calls = {"n": 0}

        def failing_once(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected skeletonization failure")
            return original(*args, **kwargs)

        monkeypatch.setattr(pipeline, "run_skeletons_stage", failing_once)
        with pytest.raises(RuntimeError, match="injected"):
            session.recompress(budget=0.5)  # rebuilds interactions, then aborts

        # Retry at the same config: downstream stages were built against the
        # *old* interactions and must not be reused.
        op = session.recompress()
        assert "skeletons" in session.last_built
        assert "blocks" in session.last_built
        assert "plan" in session.last_built

        cold = monolithic_compress(matrix, session.config)
        w = np.random.default_rng(6).standard_normal((matrix.n, 4))
        assert np.max(np.abs(op.apply(w) - cold.matvec(w))) < 1e-13

    def test_run_with_session_rejects_foreign_matrix(self, matrix):
        from repro.errors import EvaluationError
        from repro.gofmm import run

        session = make_session(matrix)
        other = make_gaussian_kernel_matrix(n=240, d=3, bandwidth=2.0, seed=9)
        with pytest.raises(EvaluationError, match="session"):
            run(other, session.config, session=session)
        # None and the session's own matrix are both fine.
        assert run(None, session.config, num_rhs=4, session=session).epsilon2 >= 0
        assert run(session.matrix, session.config, num_rhs=4, session=session).epsilon2 >= 0


class TestEquivalence:
    def test_session_matches_monolithic_compress(self, matrix):
        config = GOFMMConfig(**COMMON, budget=0.2)
        op = Session(matrix, config).compress()
        cm = monolithic_compress(matrix, config)
        w = np.random.default_rng(1).standard_normal((matrix.n, 5))
        assert np.max(np.abs(op.apply(w) - cm.matvec(w))) < 1e-13

    def test_gofmm_shim_matches_session(self, matrix):
        """gofmm.compress (the deprecation shim) ≡ the session path to 1e-13."""
        config = GOFMMConfig(**COMMON, budget=0.2)
        shim = gofmm_compress(matrix, config)
        op = Session(matrix, config).compress()
        w = np.random.default_rng(2).standard_normal((matrix.n, 4))
        assert np.max(np.abs(op.apply(w) - shim.matvec(w))) < 1e-13

    def test_warm_recompress_matches_cold_compress(self, matrix):
        """A warm recompress must equal a from-scratch compression at the new config."""
        session = make_session(matrix)
        session.compress()
        warm = session.recompress(tolerance=1e-3, budget=0.05)
        cold = monolithic_compress(matrix, session.config)
        w = np.random.default_rng(3).standard_normal((matrix.n, 4))
        assert np.max(np.abs(warm.apply(w) - cold.matvec(w))) < 1e-13

    def test_reports_agree_with_monolithic(self, matrix):
        config = GOFMMConfig(**COMMON, budget=0.2)
        op = Session(matrix, config).compress()
        _, report = monolithic_compress(matrix, config, return_report=True)
        assert op.report.num_leaves == report.num_leaves
        assert op.report.tree_depth == report.tree_depth
        assert op.report.near_pairs == report.near_pairs
        assert op.report.far_pairs == report.far_pairs
        assert op.report.average_rank == pytest.approx(report.average_rank)


class TestAttach:
    def _family(self, n=240, bandwidths=(1.0, 2.0)):
        gen = np.random.default_rng(0)
        points = gen.standard_normal((n, 3))
        return [
            KernelMatrix(points, GaussianKernel(bandwidth=b), regularization=1e-6, name=f"g{b}")
            for b in bandwidths
        ]

    def test_attach_shares_partition_and_ann(self):
        first, second = self._family()
        session = make_session(first)
        session.compress()
        other = session.attach(second)
        other.compress()
        # The attached session never built its own partition / ANN / lists.
        assert other.stage_builds["partition"] == 0
        assert other.stage_builds["neighbors"] == 0
        assert other.stage_builds["interactions"] == 0
        assert other.artifact("partition") is session.artifact("partition")
        assert other.artifact("neighbors") is session.artifact("neighbors")

    def test_attached_operator_is_accurate(self):
        """Shared-partition compression agrees with an independent compression."""
        first, second = self._family()
        session = make_session(first)
        session.compress()
        shared_op = session.attach(second).compress()
        independent = monolithic_compress(second, session.config)

        w = np.random.default_rng(4).standard_normal((second.n, 6))
        exact = second.matvec(w)

        def eps(approx):
            return np.linalg.norm(approx - exact) / np.linalg.norm(exact)

        shared_eps = eps(shared_op.apply(w))
        independent_eps = eps(independent.matvec(w))
        # The shared partition was built for a different bandwidth, so allow
        # a modest accuracy gap — but both must be genuine compressions.
        assert shared_eps < 1e-2
        assert shared_eps < max(10 * independent_eps, 1e-6)

    def test_attach_rejects_size_mismatch(self, matrix):
        session = make_session(matrix)
        other = make_gaussian_kernel_matrix(n=128, d=3, bandwidth=1.5, seed=1)
        with pytest.raises(CompressionError):
            session.attach(other)

    def test_attach_with_config_changes(self):
        first, second = self._family()
        session = make_session(first)
        session.compress()
        other = session.attach(second, budget=0.0)
        op = other.compress()
        assert op.config.budget == 0.0
        assert other.stage_builds["partition"] == 0
        # budget changed relative to the shared artifact → lists rebuilt.
        assert other.stage_builds["interactions"] == 1

    def test_operators_of_family_are_independent(self):
        """Mutating nothing: two attached operators keep distinct skeleton state."""
        first, second = self._family()
        session = make_session(first)
        op1 = session.compress()
        op2 = session.attach(second).compress()
        assert op1.tree is not op2.tree
        w = np.random.default_rng(5).standard_normal(first.n)
        assert not np.allclose(op1.apply(w), op2.apply(w))


class TestArtifactPersistence:
    """Session.save_artifacts / load_artifacts: disk-backed Partition + Neighbors."""

    def test_roundtrip_reproduces_operator_exactly(self, matrix, tmp_path):
        session = make_session(matrix)
        op1 = session.compress()
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)

        fresh = make_session(make_gaussian_kernel_matrix(n=240, d=3, bandwidth=1.5, seed=0))
        assert fresh.load_artifacts(path) == ("partition", "neighbors", "interactions")
        op2 = fresh.compress()
        assert fresh.last_reused == ("partition", "neighbors", "interactions")
        assert fresh.stage_builds["partition"] == 0
        assert fresh.stage_builds["neighbors"] == 0
        assert fresh.stage_builds["interactions"] == 0
        w = np.random.default_rng(0).standard_normal((matrix.n, 3))
        assert np.array_equal(op1.compressed.matvec(w), op2.compressed.matvec(w))

    def test_restored_tree_is_structurally_identical(self, matrix, tmp_path):
        session = make_session(matrix)
        session.prepare()
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        fresh = make_session(matrix)
        fresh.load_artifacts(path)
        original = session.artifact("partition").tree
        restored = fresh.artifact("partition").tree
        assert np.array_equal(original.permutation, restored.permutation)
        assert original.depth == restored.depth
        for a, b in zip(original.nodes, restored.nodes):
            assert a.level == b.level and a.morton == b.morton
            assert np.array_equal(a.indices, b.indices)
        restored.check_invariants(session.config.leaf_size)

    def test_neighbor_table_roundtrip(self, matrix, tmp_path):
        session = make_session(matrix)
        session.prepare()
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        fresh = make_session(matrix)
        fresh.load_artifacts(path)
        original = session.artifact("neighbors").table
        restored = fresh.artifact("neighbors").table
        assert np.array_equal(original.indices, restored.indices)
        assert np.array_equal(original.distances, restored.distances)
        assert original.iterations == restored.iterations
        assert original.converged == restored.converged

    def test_metric_free_ordering_saves_none_table(self, tmp_path):
        from repro.config import DistanceMetric

        matrix = make_gaussian_kernel_matrix(n=128, d=2, bandwidth=1.0, seed=1)
        session = make_session(matrix, distance=DistanceMetric.LEXICOGRAPHIC)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        fresh = make_session(matrix, distance=DistanceMetric.LEXICOGRAPHIC)
        fresh.load_artifacts(path)
        assert fresh.artifact("neighbors").table is None
        fresh.compress()

    def test_size_mismatch_rejected(self, matrix, tmp_path):
        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        other = make_session(make_gaussian_kernel_matrix(n=128, d=3, bandwidth=1.5, seed=0))
        with pytest.raises(CompressionError, match="n="):
            other.load_artifacts(path)

    def test_save_builds_only_persistable_stages(self, matrix, tmp_path):
        """Snapshotting builds exactly the matrix-light artifacts, nothing more."""
        session = make_session(matrix)
        session.save_artifacts(tmp_path / "artifacts.npz")
        assert session.stage_builds["partition"] == 1
        assert session.stage_builds["neighbors"] == 1
        assert session.stage_builds["interactions"] == 1
        assert session.stage_builds["skeletons"] == 0
        assert session.stage_builds["blocks"] == 0

    def test_truncated_neighbor_table_rejected_at_load(self, matrix, tmp_path):
        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["neighbor_indices"] = payload["neighbor_indices"][:100]
        payload["neighbor_distances"] = payload["neighbor_distances"][:100]
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        with pytest.raises(CompressionError, match="neighbor table"):
            make_session(matrix).load_artifacts(path)

    def test_malformed_partition_rejected_at_load(self, matrix, tmp_path):
        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["node_indices"] = payload["node_indices"].copy()
        payload["node_indices"][-5:] = 0  # duplicate indices: leaves now overlap
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        with pytest.raises(CompressionError):
            make_session(matrix).load_artifacts(path)

    def test_fingerprint_mismatch_rejected(self, matrix, tmp_path):
        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        other = make_session(matrix, leaf_size=64)
        with pytest.raises(CompressionError, match="fingerprint"):
            other.load_artifacts(path)

    def test_downstream_config_changes_do_not_block_load(self, matrix, tmp_path):
        """Artifacts only depend on partition/neighbors fields; sweeping
        tolerance or budget must still accept the saved file."""
        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        other = make_session(matrix, tolerance=1e-3, budget=0.0, max_rank=12)
        other.load_artifacts(path)
        op = other.compress()
        assert op.relative_error() < 1.0


class TestInteractionsPersistence:
    """Format-2 artifacts carry the interaction lists (serving cold start)."""

    def test_interactions_lists_roundtrip_exactly(self, matrix, tmp_path):
        session = make_session(matrix)
        session.prepare()
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        fresh = make_session(matrix)
        fresh.load_artifacts(path)
        original = session.artifact("interactions")
        restored = fresh.artifact("interactions")
        assert restored is not None
        assert set(original.lists.near) == set(restored.lists.near)
        for node_id, members in original.lists.near.items():
            assert list(members) == list(restored.lists.near[node_id])  # order too
        assert set(original.lists.far) == set(restored.lists.far)
        for node_id, members in original.lists.far.items():
            assert list(members) == list(restored.lists.far[node_id])
        assert original.lists.budget_cap == restored.lists.budget_cap
        assert original.lists.num_leaves == restored.lists.num_leaves
        assert set(original.neighbor_lists) == set(restored.neighbor_lists)
        for node_id, lst in original.neighbor_lists.items():
            assert np.array_equal(lst, restored.neighbor_lists[node_id])

    def test_budget_change_degrades_to_two_stages(self, matrix, tmp_path):
        """An interactions fingerprint mismatch skips the lists but still
        installs the partition + ANN table (budget sweeps keep working)."""
        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        other = make_session(matrix, budget=0.0)
        assert other.load_artifacts(path) == ("partition", "neighbors")
        other.compress()
        assert other.stage_builds["partition"] == 0
        assert other.stage_builds["interactions"] == 1

    def test_malformed_lists_rejected_at_load(self, matrix, tmp_path):
        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["far_cols"] = payload["far_cols"].copy()
        if payload["far_cols"].size:
            payload["far_cols"][0] = 10_000_000  # node id out of range
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        with pytest.raises(CompressionError, match="Far"):
            make_session(matrix).load_artifacts(path)

    def test_format1_files_still_load(self, matrix, tmp_path):
        """A pre-interactions artifact file installs its two stages."""
        import json as _json

        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        meta = _json.loads(bytes(payload["meta"]))
        meta["format"] = 1
        del meta["budget_cap"], meta["num_leaves"]
        del meta["fingerprints"]["interactions"]
        payload = {
            k: v for k, v in payload.items()
            if k in ("node_offsets", "node_indices", "neighbor_indices", "neighbor_distances")
        }
        payload["meta"] = np.frombuffer(_json.dumps(meta).encode(), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        fresh = make_session(matrix)
        assert fresh.load_artifacts(path) == ("partition", "neighbors")
        fresh.compress()

    def test_cold_start_runs_zero_ann_and_list_work(self, matrix, tmp_path):
        session = make_session(matrix)
        op1 = session.compress()
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        fresh = make_session(make_gaussian_kernel_matrix(n=240, d=3, bandwidth=1.5, seed=0))
        fresh.load_artifacts(path)
        op2 = fresh.compress()
        assert fresh.stage_builds["interactions"] == 0
        assert fresh.last_built == ("skeletons", "blocks", "plan")
        w = np.random.default_rng(3).standard_normal(matrix.n)
        assert np.array_equal(op1.compressed.matvec(w), op2.compressed.matvec(w))


class TestArtifactMismatchError:
    """Satellite: artifact failures raise the typed ArtifactMismatchError."""

    def test_fingerprint_mismatch_raises_typed_error(self, matrix, tmp_path):
        from repro.errors import ArtifactMismatchError, ConfigurationError

        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        other = make_session(matrix, leaf_size=64)
        with pytest.raises(ArtifactMismatchError, match="fingerprint"):
            other.load_artifacts(path)
        # the typed error stays catchable under both historical families
        with pytest.raises(CompressionError):
            other.load_artifacts(path)
        with pytest.raises(ConfigurationError):
            other.load_artifacts(path)

    def test_truncated_npz_raises_typed_error(self, matrix, tmp_path):
        from repro.errors import ArtifactMismatchError

        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(ArtifactMismatchError, match="truncated or corrupt"):
            make_session(matrix).load_artifacts(path)

    def test_size_mismatch_raises_typed_error(self, matrix, tmp_path):
        from repro.errors import ArtifactMismatchError

        session = make_session(matrix)
        path = tmp_path / "artifacts.npz"
        session.save_artifacts(path)
        other = make_session(make_gaussian_kernel_matrix(n=128, d=3, bandwidth=1.5, seed=0))
        with pytest.raises(ArtifactMismatchError, match="n="):
            other.load_artifacts(path)


class TestDirArtifactFormat:
    """Session.save_artifacts(format="dir"): the mmap-able format-v2 directory."""

    def test_dir_roundtrip_reproduces_operator_exactly(self, matrix, tmp_path):
        session = make_session(matrix)
        path = tmp_path / "artifacts.store"
        session.save_artifacts(path, format="dir")
        assert path.is_dir() and (path / "manifest.json").exists()
        fresh = make_session(matrix)
        assert fresh.load_artifacts(path) == ("partition", "neighbors", "interactions")
        w = np.random.default_rng(0).standard_normal(matrix.n)
        direct = session.compress().matvec(w)
        assert np.array_equal(fresh.compress().matvec(w), direct)

    def test_unknown_format_rejected(self, matrix, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="format"):
            make_session(matrix).save_artifacts(tmp_path / "x", format="zip")

    def test_corrupt_dir_array_raises_typed_error(self, matrix, tmp_path):
        from repro.errors import ArtifactMismatchError

        session = make_session(matrix)
        path = tmp_path / "artifacts.store"
        session.save_artifacts(path, format="dir")
        victim = path / "node_indices.npy"
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        with pytest.raises(ArtifactMismatchError):
            make_session(matrix).load_artifacts(path)

    def test_wrong_directory_kind_rejected(self, matrix, tmp_path):
        from repro.errors import ArtifactMismatchError

        session = make_session(matrix)
        operator = session.compress()
        store = tmp_path / "operator.store"
        operator.save(store)  # an operator store is not a session-artifacts dir
        with pytest.raises(ArtifactMismatchError, match="session-artifacts"):
            make_session(matrix).load_artifacts(store)

    def test_dir_format_loads_arrays_as_mmap(self, matrix, tmp_path):
        session = make_session(matrix)
        path = tmp_path / "artifacts.store"
        session.save_artifacts(path, format="dir")
        from repro.storage import read_array_dir

        _, arrays = read_array_dir(path, mmap=True)
        assert all(isinstance(arr, np.memmap) for arr in arrays.values())
