"""Unit tests for the STRUMPACK-like HSS baseline."""

import numpy as np
import pytest

from repro.baselines import compress_hss_baseline
from repro.matrices import build_matrix

from ..conftest import make_gaussian_kernel_matrix, make_random_spd


class TestHSSBaseline:
    def test_matvec_accuracy_on_grid_ordered_matrix(self):
        # K02's lexicographic (grid) order is friendly to HSS, as in Table 3.
        matrix = build_matrix("K02", 256)
        hss = compress_hss_baseline(matrix, leaf_size=32, max_rank=48, tolerance=1e-9)
        dense = matrix.to_dense()
        w = np.random.default_rng(0).standard_normal((256, 3))
        err = np.linalg.norm(hss.matvec(w) - dense @ w) / np.linalg.norm(dense @ w)
        assert err < 5e-2

    def test_matvec_shapes(self):
        matrix = make_gaussian_kernel_matrix(n=120, d=2, seed=0)
        hss = compress_hss_baseline(matrix, leaf_size=30, max_rank=20)
        assert hss.matvec(np.zeros(120)).shape == (120,)
        assert (hss @ np.zeros((120, 5))).shape == (120, 5)

    def test_linearity(self):
        matrix = make_gaussian_kernel_matrix(n=100, d=2, seed=1)
        hss = compress_hss_baseline(matrix, leaf_size=25, max_rank=20)
        gen = np.random.default_rng(1)
        w1, w2 = gen.standard_normal(100), gen.standard_normal(100)
        assert np.allclose(hss.matvec(w1 + 2 * w2), hss.matvec(w1) + 2 * hss.matvec(w2), atol=1e-8)

    def test_single_leaf_degenerate_case(self):
        matrix = make_random_spd(20, seed=2)
        hss = compress_hss_baseline(matrix, leaf_size=64, max_rank=8)
        w = np.random.default_rng(2).standard_normal(20)
        assert np.allclose(hss.matvec(w), matrix.array @ w, atol=1e-10)

    def test_rank_cap_respected(self):
        matrix = make_random_spd(96, seed=3, decay=0.1)
        hss = compress_hss_baseline(matrix, leaf_size=24, max_rank=12, tolerance=1e-14)
        assert max(hss.ranks) <= 12

    def test_average_rank_positive(self):
        matrix = build_matrix("K02", 128)
        hss = compress_hss_baseline(matrix, leaf_size=32, max_rank=24)
        assert 0 < hss.average_rank <= 24

    def test_storage_below_dense(self):
        matrix = build_matrix("K02", 256)
        hss = compress_hss_baseline(matrix, leaf_size=32, max_rank=24, tolerance=1e-6)
        assert hss.storage_entries() < 256 * 256

    def test_tighter_tolerance_improves_accuracy(self):
        matrix = build_matrix("K02", 192)
        dense = matrix.to_dense()
        w = np.random.default_rng(3).standard_normal((192, 2))
        errs = []
        for tol in (1e-1, 1e-8):
            hss = compress_hss_baseline(matrix, leaf_size=32, max_rank=48, tolerance=tol)
            errs.append(np.linalg.norm(hss.matvec(w) - dense @ w) / np.linalg.norm(dense @ w))
        assert errs[1] <= errs[0]

    def test_struggles_on_scrambled_kernel_matrix(self):
        """Lexicographic HSS on a shuffled kernel matrix needs much higher rank than GOFMM (Fig. 7 / Table 3)."""
        from repro import GOFMMConfig, compress
        from repro.config import DistanceMetric
        from repro.core.accuracy import exact_relative_error

        matrix = make_gaussian_kernel_matrix(n=256, d=3, bandwidth=0.8, seed=4)
        # Shuffle the points so the input order carries no locality.
        perm = np.random.default_rng(4).permutation(256)
        shuffled = matrix.coordinates[perm]
        from repro.matrices import KernelMatrix
        from repro.matrices.kernels import GaussianKernel

        scrambled = KernelMatrix(shuffled, GaussianKernel(bandwidth=0.8), regularization=1e-8)
        dense = scrambled.to_dense()
        w = np.random.default_rng(5).standard_normal((256, 2))

        hss = compress_hss_baseline(scrambled, leaf_size=32, max_rank=24, tolerance=1e-10)
        hss_err = np.linalg.norm(hss.matvec(w) - dense @ w) / np.linalg.norm(dense @ w)

        config = GOFMMConfig(
            leaf_size=32, max_rank=24, tolerance=1e-10, neighbors=8, budget=0.2,
            num_neighbor_trees=4, distance=DistanceMetric.KERNEL, seed=4,
        )
        gofmm_err = exact_relative_error(compress(scrambled, config), scrambled, num_rhs=2)
        assert gofmm_err < hss_err
