"""Unit tests for the micro-batching serving runtime (:mod:`repro.serving`).

The load-bearing guarantees:

* batching is *numerically invisible*: a response under concurrent batched
  load is bit-identical to the response the same request gets when served
  alone (canonical GEMM width, pinned with ``np.array_equal``),
* backpressure rejects cleanly with a retry hint and never corrupts the
  queue,
* hot reload swaps operators without dropping in-flight requests, and a
  bad artifact file keeps the old operator serving,
* solve batching produces per-request results that satisfy the requested
  tolerance.
"""

import threading
import time

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.api import Session
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServerOverloadedError,
    ServingConfigError,
    ServingError,
)
from repro.serving import (
    INTERACTIVE,
    MATVEC,
    METRICS_SCHEMA_VERSION,
    SOLVE,
    THROUGHPUT,
    AsyncServingClient,
    BatchPolicy,
    LanePolicy,
    MatvecServer,
    MicroBatcher,
    ServingClient,
    ServingMetrics,
    aggregate_metrics,
)

from ..conftest import make_gaussian_kernel_matrix


def make_config(**overrides) -> GOFMMConfig:
    base = dict(
        leaf_size=32, max_rank=16, tolerance=1e-7, neighbors=8,
        budget=0.2, num_neighbor_trees=3, distance="kernel", seed=0,
    )
    base.update(overrides)
    return GOFMMConfig(**base)


@pytest.fixture(scope="module")
def matrix():
    return make_gaussian_kernel_matrix(n=224, d=3, bandwidth=1.4, seed=0)


@pytest.fixture(scope="module")
def operator(matrix):
    return Session(matrix, make_config()).compress()


def make_server(operator, **policy_overrides) -> MatvecServer:
    policy = BatchPolicy(**{"max_batch": 8, "max_wait_ms": 5.0, "max_queue": 512, **policy_overrides})
    server = MatvecServer(policy=policy)
    server.register("op", operator)
    return server


class TestBitIdentity:
    """Batched responses are bitwise equal to unbatched ones."""

    def test_concurrent_equals_sequential_bitwise(self, matrix, operator):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((24, matrix.n))

        with make_server(operator) as server:
            futures = [server.submit("op", v) for v in vectors]
            batched = [f.result(timeout=30) for f in futures]
            assert server.stats()["op"]["batch_occupancy"] > 1.0

        with make_server(operator) as server:
            sequential = [server.matvec("op", v, timeout=30) for v in vectors]

        for got, alone in zip(batched, sequential):
            assert np.array_equal(got, alone)

    def test_response_equals_direct_padded_evaluation(self, matrix, operator):
        """The canonical-width mechanism itself: response == column 0 of the
        zero-padded direct product, bit for bit."""
        rng = np.random.default_rng(1)
        w = rng.standard_normal(matrix.n)
        padded = np.zeros((matrix.n, 8))
        padded[:, 0] = w
        expected = np.asarray(operator.apply(padded))[:, 0]
        with make_server(operator) as server:
            got = server.matvec("op", w, timeout=30)
        assert np.array_equal(got, expected)

    def test_responses_are_accurate(self, matrix, operator):
        rng = np.random.default_rng(2)
        vectors = rng.standard_normal((8, matrix.n))
        with make_server(operator) as server:
            futures = [server.submit("op", v) for v in vectors]
            responses = [f.result(timeout=30) for f in futures]
        for v, u in zip(vectors, responses):
            assert np.allclose(u, operator.apply(v), atol=1e-9)

    def test_unpadded_mode_still_accurate(self, matrix, operator):
        rng = np.random.default_rng(3)
        vectors = rng.standard_normal((8, matrix.n))
        with make_server(operator, pad_to_full_width=False) as server:
            futures = [server.submit("op", v) for v in vectors]
            for v, f in zip(vectors, futures):
                assert np.allclose(f.result(timeout=30), operator.apply(v), atol=1e-9)


class TestBatchingSemantics:
    def test_full_batches_under_concurrent_load(self, matrix, operator):
        rng = np.random.default_rng(4)
        vectors = rng.standard_normal((32, matrix.n))
        with make_server(operator, max_wait_ms=50.0) as server:
            futures = [server.submit("op", v) for v in vectors]
            for f in futures:
                f.result(timeout=30)
            stats = server.stats()["op"]
        # 32 requests enqueued before the worker drains them → full batches
        assert stats["batches"] <= 8
        assert stats["batch_occupancy"] >= 4.0
        assert stats["responses"] == 32

    def test_max_wait_bounds_idle_latency(self, matrix, operator):
        with make_server(operator, max_wait_ms=10.0) as server:
            started = time.monotonic()
            server.matvec("op", np.zeros(matrix.n), timeout=30)
            elapsed = time.monotonic() - started
        # one lonely request waits ~max_wait_ms, not forever
        assert elapsed < 5.0

    def test_mixed_kinds_do_not_cobatch(self, matrix, operator):
        rng = np.random.default_rng(5)
        with make_server(operator, max_wait_ms=20.0) as server:
            mv = server.submit("op", rng.standard_normal(matrix.n))
            sv = server.submit("op", rng.standard_normal(matrix.n), kind=SOLVE,
                               shift=1.0, tolerance=1e-8)
            u = mv.result(timeout=30)
            result = sv.result(timeout=60)
        assert u.shape == (matrix.n,)
        assert result.solution.shape == (matrix.n,)

    def test_adaptive_wait_shrinks_when_target_exceeded(self, matrix, operator):
        # A 0.01 ms latency target is unreachable (evaluation alone takes
        # longer), so every observed batch pushes the EWMA over it and the
        # effective wait must collapse toward the floor.
        with make_server(operator, max_wait_ms=20.0, latency_target_ms=0.01) as server:
            entry = server.entry("op")
            assert entry.batcher.current_wait_ms == 20.0
            for _ in range(8):
                server.matvec("op", np.zeros(matrix.n), timeout=30)
            final = entry.batcher.current_wait_ms
            stats = server.stats()["op"]
        assert final < 20.0
        assert stats["adaptive_wait_ms"] == pytest.approx(final)
        assert stats["latency_ewma_ms"] > 0.01

    def test_adaptive_wait_recovers_under_generous_target(self, matrix, operator):
        # With a huge target the EWMA sits far below 0.7·target, so the wait
        # grows back toward max_wait_ms after having been shrunk.
        with make_server(operator, max_wait_ms=4.0, latency_target_ms=10_000.0) as server:
            batcher = server.entry("op").batcher
            with batcher._cond:
                batcher._wait_ms = 0.05  # as if previously collapsed
            for _ in range(8):
                server.matvec("op", np.zeros(matrix.n), timeout=30)
            final = batcher.current_wait_ms
        assert 0.05 < final <= 4.0

    def test_fixed_policy_keeps_wait_and_reports_no_adaptive_metrics(self, matrix, operator):
        with make_server(operator, max_wait_ms=5.0) as server:
            server.matvec("op", np.zeros(matrix.n), timeout=30)
            assert server.entry("op").batcher.current_wait_ms == 5.0
            stats = server.stats()["op"]
        assert "adaptive_wait_ms" not in stats

    def test_latency_target_validated(self):
        with pytest.raises(ServingError, match="latency_target_ms"):
            BatchPolicy(latency_target_ms=0.0)
        with pytest.raises(ServingError, match="latency_target_ms"):
            BatchPolicy(latency_target_ms=-1.0)
        assert BatchPolicy(latency_target_ms=2.5).latency_target_ms == 2.5

    def test_rejects_wrong_shape_and_unknown_operator(self, matrix, operator):
        with make_server(operator) as server:
            with pytest.raises(ServingError, match="shape"):
                server.submit("op", np.zeros(matrix.n + 1))
            with pytest.raises(ServingError, match="unknown operator"):
                server.submit("nope", np.zeros(matrix.n))
            with pytest.raises(ServingError, match="solve parameter"):
                server.submit("op", np.zeros(matrix.n), kind=SOLVE, bogus=1)

    def test_submit_before_start_raises(self, operator, matrix):
        server = make_server(operator)
        with pytest.raises(ServingError, match="not started"):
            server.submit("op", np.zeros(matrix.n))


class TestSolveBatching:
    def test_concurrent_solves_meet_tolerance(self, matrix, operator):
        rng = np.random.default_rng(6)
        rhs = rng.standard_normal((6, matrix.n))
        shift = 1.0
        with make_server(operator, max_wait_ms=50.0) as server:
            futures = [
                server.submit("op", b, kind=SOLVE, shift=shift, tolerance=1e-9)
                for b in rhs
            ]
            results = [f.result(timeout=120) for f in futures]
            stats = server.stats()["op"]
        assert stats["batch_occupancy"] > 1.0  # solves actually coalesced
        for b, result in zip(rhs, results):
            assert result.converged
            residual = np.asarray(operator.apply(result.solution)) + shift * result.solution - b
            assert np.linalg.norm(residual) <= 1e-8 * np.linalg.norm(b)

    def test_different_params_use_different_lanes(self, matrix, operator):
        rng = np.random.default_rng(7)
        with make_server(operator, max_wait_ms=20.0) as server:
            f1 = server.submit("op", rng.standard_normal(matrix.n), kind=SOLVE, shift=1.0)
            f2 = server.submit("op", rng.standard_normal(matrix.n), kind=SOLVE, shift=2.0)
            r1, r2 = f1.result(timeout=60), f2.result(timeout=60)
        assert r1.converged and r2.converged


class TestBackpressure:
    """Bounded queue + reject-with-retry-after, tested on a stub runner."""

    def _slow_batcher(self, gate: threading.Event, policy: BatchPolicy, started=None):
        metrics = ServingMetrics()

        def runner(kind, block, params):
            if started is not None:
                started.set()
            gate.wait(timeout=30)
            return [block[:, j] for j in range(block.shape[1])]

        batcher = MicroBatcher(runner, policy, metrics, name="stub")
        batcher.start()
        return batcher, metrics

    def test_overload_rejects_with_retry_hint(self):
        gate = threading.Event()
        started = threading.Event()
        policy = BatchPolicy(max_batch=1, max_wait_ms=0.0, max_queue=2, retry_after_ms=7.0)
        batcher, metrics = self._slow_batcher(gate, policy, started=started)
        try:
            accepted = [batcher.submit(MATVEC, np.zeros(4))]
            assert started.wait(timeout=30)  # worker holds one batch, blocked
            accepted.append(batcher.submit(MATVEC, np.zeros(4)))
            accepted.append(batcher.submit(MATVEC, np.zeros(4)))  # queue now full
            with pytest.raises(ServerOverloadedError) as excinfo:
                batcher.submit(MATVEC, np.zeros(4))
            assert excinfo.value.retry_after_s == pytest.approx(0.007)
            assert metrics.rejected == 1
            gate.set()
            for future in accepted:  # accepted requests all complete
                assert future.result(timeout=30).shape == (4,)
        finally:
            gate.set()
            batcher.close()

    def test_queue_drains_after_rejection(self):
        gate = threading.Event()
        gate.set()  # runner never blocks
        policy = BatchPolicy(max_batch=4, max_wait_ms=0.5, max_queue=64)
        batcher, metrics = self._slow_batcher(gate, policy)
        try:
            futures = [batcher.submit(MATVEC, np.full(4, i)) for i in range(32)]
            for i, future in enumerate(futures):
                assert np.array_equal(future.result(timeout=30), np.full(4, i))
            assert metrics.responses == 32
        finally:
            batcher.close()

    def test_close_without_drain_fails_pending(self):
        gate = threading.Event()
        started = threading.Event()
        policy = BatchPolicy(max_batch=1, max_wait_ms=0.0, max_queue=8)
        batcher, metrics = self._slow_batcher(gate, policy, started=started)
        futures = [batcher.submit(MATVEC, np.zeros(4)) for _ in range(4)]
        assert started.wait(timeout=30)  # worker holds the first batch, blocked
        closer = threading.Thread(target=batcher.close, kwargs={"drain": False})
        closer.start()
        # close() fails the still-queued futures before joining the worker
        for future in futures[1:]:
            with pytest.raises(ServingError, match="shut down"):
                future.result(timeout=30)
        gate.set()  # release the in-flight batch: it completes normally
        assert futures[0].result(timeout=30).shape == (4,)
        closer.join(timeout=30)
        assert not closer.is_alive()
        with pytest.raises(ServingError, match="shut down"):
            batcher.submit(MATVEC, np.zeros(4))


class TestHotReload:
    def _artifact_server(self, tmp_path, matrix, policy=None):
        config = make_config()
        path = tmp_path / "artifacts.npz"
        Session(matrix, config).save_artifacts(path)
        server = MatvecServer(policy=policy or BatchPolicy(max_batch=4, max_wait_ms=1.0))
        server.register("op", matrix=matrix, config=config, artifacts=path)
        return server, path, config

    def test_cold_start_from_artifacts_serves(self, tmp_path, matrix, operator):
        server, _, _ = self._artifact_server(tmp_path, matrix)
        rng = np.random.default_rng(8)
        w = rng.standard_normal(matrix.n)
        with server:
            got = server.matvec("op", w, timeout=30)
        assert np.allclose(got, operator.apply(w), atol=1e-9)

    def test_reload_swaps_without_dropping_in_flight(self, tmp_path, matrix):
        server, path, config = self._artifact_server(tmp_path, matrix)
        entry = server.entry("op")
        first_operator = entry.operator
        rng = np.random.default_rng(9)
        vectors = rng.standard_normal((64, matrix.n))
        errors: list = []
        responses: dict = {}

        def hammer(lo, hi):
            try:
                for i in range(lo, hi):
                    responses[i] = server.matvec("op", vectors[i], timeout=60)
            except BaseException as exc:  # pragma: no cover - the assertion target
                errors.append(exc)

        with server:
            threads = [threading.Thread(target=hammer, args=(i * 16, (i + 1) * 16)) for i in range(4)]
            for t in threads:
                t.start()
            # rewrite the artifact file mid-traffic (stamp changes), then poll
            time.sleep(0.005)
            Session(matrix, config).save_artifacts(path)
            outcome = server.poll_reloads()
            for t in threads:
                t.join()
            stats = server.stats()["op"]

        assert not errors
        assert outcome == {"op": True}
        assert entry.operator is not first_operator  # swapped
        assert entry.version == 2
        assert stats["reloads"] == 1 and stats["reload_failures"] == 0
        assert len(responses) == 64
        direct = np.asarray(first_operator.apply(vectors.T))
        for i, got in responses.items():
            assert np.allclose(got, direct[:, i], atol=1e-9)

    def test_reload_noop_when_unchanged(self, tmp_path, matrix):
        server, _, _ = self._artifact_server(tmp_path, matrix)
        with server:
            assert server.poll_reloads() == {"op": False}
            assert server.entry("op").version == 1

    def test_bad_artifact_keeps_old_operator(self, tmp_path, matrix):
        server, path, _ = self._artifact_server(tmp_path, matrix)
        entry = server.entry("op")
        old = entry.operator
        # overwrite with artifacts from an incompatible config → fingerprint mismatch
        Session(matrix, make_config(leaf_size=64)).save_artifacts(path)
        rng = np.random.default_rng(10)
        with server:
            assert server.poll_reloads() == {"op": False}
            got = server.matvec("op", rng.standard_normal(matrix.n), timeout=30)
        assert entry.operator is old
        assert server.stats()["op"]["reload_failures"] == 1
        assert got.shape == (matrix.n,)

    def test_swap_requires_matching_shape(self, matrix, operator):
        small = Session(
            make_gaussian_kernel_matrix(n=96, d=3, bandwidth=1.4, seed=3), make_config()
        ).compress()
        with make_server(operator) as server:
            with pytest.raises(ServingError, match="shape"):
                server.swap("op", small)

    def test_reload_requires_artifact_source(self, operator):
        with make_server(operator) as server:
            with pytest.raises(ServingError, match="artifact source"):
                server.reload("op")


class TestClients:
    def test_sync_client_retries_on_overload(self, matrix, operator):
        calls = {"n": 0}
        real_submit = MatvecServer.submit

        class Flaky(MatvecServer):
            def submit(self, name, w, kind=MATVEC, **params):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ServerOverloadedError("full", retry_after_s=0.001)
                return real_submit(self, name, w, kind=kind, **params)

        server = Flaky(policy=BatchPolicy(max_batch=4, max_wait_ms=1.0))
        server.register("op", operator)
        client = ServingClient(server, retries=2)
        with server:
            got = client.matvec("op", np.zeros(matrix.n), timeout=30)
        assert calls["n"] == 2
        assert got.shape == (matrix.n,)

    def test_async_client_gathers_batches(self, matrix, operator):
        import asyncio

        rng = np.random.default_rng(11)
        vectors = rng.standard_normal((12, matrix.n))

        async def drive(server):
            client = AsyncServingClient(server)
            return await asyncio.gather(*(client.matvec("op", v) for v in vectors))

        with make_server(operator, max_wait_ms=20.0) as server:
            responses = asyncio.run(drive(server))
            stats = server.stats()["op"]
        assert stats["batch_occupancy"] > 1.0
        for v, u in zip(vectors, responses):
            assert np.allclose(u, operator.apply(v), atol=1e-9)


class TestMetricsAndRegistry:
    def test_snapshot_fields(self, matrix, operator):
        with make_server(operator) as server:
            for _ in range(4):
                server.matvec("op", np.zeros(matrix.n), timeout=30)
            stats = server.stats()["op"]
        for key in ("requests", "responses", "batches", "batch_occupancy",
                    "latency_ms", "max_queue_depth", "version", "queue_depth"):
            assert key in stats
        assert stats["requests"] == 4
        assert stats["responses"] == 4
        assert stats["latency_ms"]["count"] == 4
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"] > 0.0

    def test_register_duplicate_rejected(self, operator):
        server = make_server(operator)
        with pytest.raises(ServingError, match="already registered"):
            server.register("op", operator)

    def test_unregister_then_unknown(self, matrix, operator):
        server = make_server(operator)
        server.start()
        server.unregister("op")
        with pytest.raises(ServingError, match="unknown operator"):
            server.matvec("op", np.zeros(matrix.n))
        server.stop()

    def test_policy_validation(self):
        with pytest.raises(ServingError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ServingError):
            BatchPolicy(max_queue=0)
        with pytest.raises(ServingError):
            BatchPolicy(max_wait_ms=-1.0)


class TestCancellation:
    def test_cancelled_request_does_not_kill_the_batcher(self, matrix, operator):
        """A caller cancelling its pending future (asyncio timeout) must not
        wedge the operator for everyone else."""
        rng = np.random.default_rng(13)
        vectors = rng.standard_normal((8, matrix.n))
        with make_server(operator, max_wait_ms=100.0, max_batch=8) as server:
            victim = server.submit("op", vectors[0])
            assert victim.cancel()  # pending → cancellation succeeds
            others = [server.submit("op", v) for v in vectors[1:]]
            responses = [f.result(timeout=30) for f in others]  # batch completes
            # the worker survived: a fresh request still gets served
            again = server.matvec("op", vectors[0], timeout=30)
        for v, u in zip(vectors[1:], responses):
            assert np.allclose(u, operator.apply(v), atol=1e-9)
        assert again.shape == (matrix.n,)


class TestRestart:
    def test_server_restarts_after_stop(self, matrix, operator):
        server = make_server(operator)
        w = np.random.default_rng(12).standard_normal(matrix.n)
        with server:
            first = server.matvec("op", w, timeout=30)
        with pytest.raises(ServingError, match="shut down"):
            server.submit("op", w)
        with server:  # restart: batchers reopen
            again = server.matvec("op", w, timeout=30)
        assert np.array_equal(first, again)

    def test_preconditioner_cache_is_bounded(self, operator):
        for i in range(3 * operator._PRECONDITIONER_CACHE_MAX):
            operator.preconditioner(shift=1.0 + i)
        assert len(operator._preconditioners) <= operator._PRECONDITIONER_CACHE_MAX
        # repeated shift reuses the cached factors
        p1 = operator.preconditioner(shift=0.5)
        p2 = operator.preconditioner(shift=0.5)
        assert p1 is p2


def make_stub_batcher(policy, gate=None, started=None, evaluated=None):
    """A MicroBatcher over a stub runner (optionally gated, recording batches)."""
    metrics = ServingMetrics()

    def runner(kind, block, params):
        if started is not None:
            started.set()
        if gate is not None:
            gate.wait(timeout=30)
        if evaluated is not None:
            evaluated.append(block.copy())
        return [block[:, j] for j in range(block.shape[1])]

    batcher = MicroBatcher(runner, policy, metrics, name="stub")
    batcher.start()
    return batcher, metrics


class TestLatencyLanes:
    def test_interactive_flushes_while_throughput_waits(self):
        """An interactive request never waits out max_wait_ms; with a huge
        policy wait it completes while the throughput request still queues —
        and the lowest-wait-first rule serves it first."""
        evaluated: list = []
        policy = BatchPolicy(max_batch=8, max_wait_ms=5_000.0, max_queue=64)
        batcher, metrics = make_stub_batcher(policy, evaluated=evaluated)
        try:
            slow = batcher.submit(MATVEC, np.full(4, 1.0))  # throughput: waits
            fast = batcher.submit(MATVEC, np.full(4, 2.0), lane=INTERACTIVE)
            assert np.array_equal(fast.result(timeout=30), np.full(4, 2.0))
            assert not slow.done()  # still waiting for co-batched traffic
            assert evaluated and evaluated[0][0, 0] == 2.0  # interactive ran first
        finally:
            batcher.close()  # drains: the throughput request completes
        assert np.array_equal(slow.result(timeout=30), np.full(4, 1.0))
        assert metrics.responses == 2

    def test_requests_coalesce_only_within_a_lane(self):
        evaluated: list = []
        policy = BatchPolicy(max_batch=8, max_wait_ms=100.0, max_queue=64)
        batcher, _ = make_stub_batcher(policy, evaluated=evaluated)
        try:
            futures = [
                batcher.submit(MATVEC, np.full(4, float(i)),
                               lane=INTERACTIVE if i % 2 else THROUGHPUT)
                for i in range(8)
            ]
            for future in futures:
                future.result(timeout=30)
        finally:
            batcher.close()
        for block in evaluated:  # no batch mixes the two lanes' markers
            lanes = {int(block[0, j]) % 2 for j in range(block.shape[1])}
            assert len(lanes) == 1

    def test_custom_lane_and_lane_validation(self):
        policy = BatchPolicy(max_batch=8, lanes={"bulk": LanePolicy(max_wait_ms=50.0)})
        assert set(policy.lanes) == {THROUGHPUT, INTERACTIVE, "bulk"}
        assert policy.lane_limits("bulk") == (50.0, 8)
        assert policy.lane_limits(INTERACTIVE) == (0.0, 8)
        assert policy.lane_limits(THROUGHPUT)[0] is None  # inherits (adaptive-capable)
        with pytest.raises(ServingError, match="unknown lane"):
            policy.lane_policy("nope")

    def test_unknown_lane_rejected_at_submit(self, matrix, operator):
        with make_server(operator) as server:
            with pytest.raises(ServingError, match="unknown lane"):
                server.submit("op", np.zeros(matrix.n), lane="vip")

    def test_lane_mix_in_flight_is_bit_identical_to_sequential(self, matrix, operator):
        """The pinned lane guarantee: lanes change waiting, never the GEMM
        width — a response is bitwise the same on either lane, under
        concurrent mixed-lane load or served alone."""
        rng = np.random.default_rng(21)
        vectors = rng.standard_normal((24, matrix.n))
        lanes = [INTERACTIVE if i % 3 == 0 else THROUGHPUT for i in range(24)]

        with make_server(operator, max_wait_ms=20.0) as server:
            futures = [server.submit("op", v, lane=lane) for v, lane in zip(vectors, lanes)]
            mixed = [f.result(timeout=30) for f in futures]

        with make_server(operator) as server:
            sequential = [server.matvec("op", v, timeout=30) for v in vectors]

        for got, alone in zip(mixed, sequential):
            assert np.array_equal(got, alone)

    def test_lane_latencies_reported_separately(self, matrix, operator):
        with make_server(operator, max_wait_ms=1.0) as server:
            server.matvec("op", np.zeros(matrix.n), timeout=30)
            server.matvec("op", np.zeros(matrix.n), lane=INTERACTIVE, timeout=30)
            stats = server.stats()["op"]
        assert stats["lanes"][THROUGHPUT]["responses"] == 1
        assert stats["lanes"][INTERACTIVE]["responses"] == 1
        assert stats["lanes"][INTERACTIVE]["latency_ms"]["p50"] > 0.0


class TestDeadlines:
    def test_expired_while_queued_is_shed_and_never_evaluated(self):
        """The deadline contract: an expired-in-queue request fails with the
        typed error and its vector never reaches the runner."""
        gate = threading.Event()
        started = threading.Event()
        evaluated: list = []
        policy = BatchPolicy(max_batch=1, max_wait_ms=0.0, max_queue=8)
        batcher, metrics = make_stub_batcher(policy, gate=gate, started=started,
                                             evaluated=evaluated)
        try:
            blocker = batcher.submit(MATVEC, np.full(4, 1.0))
            assert started.wait(timeout=30)  # worker is inside the gated batch
            doomed = batcher.submit(MATVEC, np.full(4, 2.0), deadline_ms=5.0)
            time.sleep(0.03)  # let the deadline expire while queued
            gate.set()
            with pytest.raises(DeadlineExceededError) as excinfo:
                doomed.result(timeout=30)
            assert excinfo.value.lane == THROUGHPUT
            assert excinfo.value.waited_ms >= 5.0
            assert np.array_equal(blocker.result(timeout=30), np.full(4, 1.0))
        finally:
            gate.set()
            batcher.close()
        # the shed vector (marker 2.0) never occupied a GEMM slot
        assert all(block[0, 0] != 2.0 for block in evaluated)
        assert metrics.shed == 1
        assert metrics.responses == 1

    def test_deadline_met_request_is_served_normally(self, matrix, operator):
        with make_server(operator, max_wait_ms=1.0) as server:
            got = server.matvec("op", np.zeros(matrix.n), deadline_ms=30_000.0, timeout=30)
        assert got.shape == (matrix.n,)

    def test_shed_is_counted_per_lane(self):
        gate = threading.Event()
        started = threading.Event()
        policy = BatchPolicy(max_batch=1, max_wait_ms=0.0, max_queue=8)
        batcher, metrics = make_stub_batcher(policy, gate=gate, started=started)
        try:
            batcher.submit(MATVEC, np.zeros(4))
            assert started.wait(timeout=30)
            doomed = batcher.submit(MATVEC, np.zeros(4), lane=INTERACTIVE, deadline_ms=1.0)
            time.sleep(0.01)
            gate.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30)
        finally:
            gate.set()
            batcher.close()
        assert metrics.to_dict()["lanes"][INTERACTIVE]["shed"] == 1

    def test_non_positive_deadline_rejected(self, matrix, operator):
        with make_server(operator) as server:
            with pytest.raises(ServingError, match="deadline_ms"):
                server.submit("op", np.zeros(matrix.n), deadline_ms=0.0)


class TestPolicyValidation:
    """Satellite: all knobs validated at construction with typed config errors."""

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0}, {"max_batch": -1}, {"max_batch": 2.5},
        {"max_wait_ms": -0.1}, {"max_wait_ms": float("nan")},
        {"max_queue": 0}, {"retry_after_ms": -1.0},
        {"latency_target_ms": 0.0}, {"latency_target_ms": -3.0},
    ])
    def test_bad_batch_policy_raises_config_error(self, kwargs):
        with pytest.raises(ServingConfigError):
            BatchPolicy(**kwargs)

    def test_config_error_is_both_serving_and_configuration_error(self):
        with pytest.raises(ServingError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch=0)

    def test_bad_lane_policies_raise(self):
        with pytest.raises(ServingConfigError, match="max_wait_ms"):
            LanePolicy(max_wait_ms=-1.0)
        with pytest.raises(ServingConfigError, match="max_batch"):
            LanePolicy(max_batch=0)
        with pytest.raises(ServingConfigError, match="canonical width"):
            BatchPolicy(max_batch=4, lanes={"wide": LanePolicy(max_batch=8)})
        with pytest.raises(ServingConfigError, match="lane names"):
            BatchPolicy(lanes={"": LanePolicy()})
        with pytest.raises(ServingConfigError, match="LanePolicy"):
            BatchPolicy(lanes={"bulk": {"max_wait_ms": 1.0}})


class TestClientBackoff:
    """Satellite: retry_after honored with capped exponential backoff + jitter."""

    class _Rejecting:
        """A server stub that rejects the first ``failures`` submissions."""

        def __init__(self, failures, retry_after_s=0.05):
            self.failures = failures
            self.retry_after_s = retry_after_s
            self.calls = 0

        def submit(self, name, w, kind=MATVEC, lane=None, deadline_ms=None, **params):
            self.calls += 1
            if self.calls <= self.failures:
                raise ServerOverloadedError("full", retry_after_s=self.retry_after_s)
            future = __import__("concurrent.futures", fromlist=["Future"]).Future()
            future.set_result(np.asarray(w))
            return future

    def test_backoff_grows_exponentially_and_caps(self, monkeypatch):
        sleeps: list = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        server = self._Rejecting(failures=4)
        client = ServingClient(server, retries=4, backoff_growth=2.0,
                               max_backoff_s=0.15, jitter=0.0)
        got = client.matvec("op", np.zeros(4))
        assert got.shape == (4,)
        assert server.calls == 5
        # hint·growth^i, capped: 0.05, 0.10, then pinned at max_backoff_s
        assert sleeps == pytest.approx([0.05, 0.10, 0.15, 0.15])

    def test_jitter_stays_within_the_backoff_envelope(self, monkeypatch):
        import random

        sleeps: list = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        server = self._Rejecting(failures=3)
        client = ServingClient(server, retries=3, backoff_growth=2.0,
                               max_backoff_s=1.0, jitter=0.5, rng=random.Random(7))
        client.matvec("op", np.zeros(4))
        expected_bases = [0.05, 0.10, 0.20]
        assert len(sleeps) == 3
        for slept, base in zip(sleeps, expected_bases):
            assert 0.5 * base <= slept <= base  # jitter scales into [1-jitter, 1]

    def test_exhausted_retries_reraise(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        server = self._Rejecting(failures=10)
        client = ServingClient(server, retries=2)
        with pytest.raises(ServerOverloadedError):
            client.matvec("op", np.zeros(4))
        assert server.calls == 3  # initial try + retries, then give up

    def test_deadline_shed_is_not_retried(self):
        class Shedding:
            calls = 0

            def submit(self, name, w, kind=MATVEC, lane=None, deadline_ms=None, **params):
                self.calls += 1
                raise DeadlineExceededError("expired", lane=INTERACTIVE, waited_ms=9.0)

        server = Shedding()
        client = ServingClient(server, retries=5)
        with pytest.raises(DeadlineExceededError):
            client.matvec("op", np.zeros(4), lane=INTERACTIVE, deadline_ms=5.0)
        assert server.calls == 1

    def test_backoff_parameters_validated(self):
        server = self._Rejecting(failures=0)
        with pytest.raises(ServingConfigError):
            ServingClient(server, retries=-1)
        with pytest.raises(ServingConfigError):
            ServingClient(server, backoff_growth=0.5)
        with pytest.raises(ServingConfigError):
            ServingClient(server, max_backoff_s=0.0)
        with pytest.raises(ServingConfigError):
            ServingClient(server, jitter=1.0)

    def test_async_client_backoff_schedule_matches(self):
        import asyncio

        sleeps: list = []
        server = self._Rejecting(failures=2)
        client = AsyncServingClient(server, retries=2, backoff_growth=2.0,
                                    max_backoff_s=1.0, jitter=0.0)

        async def drive():
            real_sleep = asyncio.sleep

            async def fake_sleep(s):
                sleeps.append(s)
                await real_sleep(0)

            asyncio.sleep = fake_sleep
            try:
                return await client.matvec("op", np.zeros(4))
            finally:
                asyncio.sleep = real_sleep

        got = asyncio.run(drive())
        assert got.shape == (4,)
        assert sleeps == pytest.approx([0.05, 0.10])


class TestStableMetricsSchema:
    """Satellite: ``to_dict`` is a stable, every-key-present schema."""

    TOP_KEYS = {
        "schema_version", "instances", "requests", "responses", "errors",
        "rejected", "shed", "batches", "batched_requests", "batch_occupancy",
        "reloads", "reload_failures", "max_queue_depth", "adaptive_wait_ms",
        "latency_ewma_ms", "bytes_resident", "bytes_on_disk",
        "latency_ms", "batch_eval_ms", "batch_sizes", "lanes", "counters",
    }
    LATENCY_KEYS = {"count", "mean", "p50", "p90", "p99", "max"}

    def test_empty_metrics_schema_is_complete(self):
        out = ServingMetrics().to_dict()
        assert set(out) == self.TOP_KEYS
        assert out["schema_version"] == METRICS_SCHEMA_VERSION
        assert out["instances"] == 1
        assert set(out["latency_ms"]) == self.LATENCY_KEYS
        assert out["latency_ms"]["count"] == 0
        assert out["adaptive_wait_ms"] is None
        assert out["lanes"] == {}

    def test_recorded_metrics_keep_the_same_schema(self):
        metrics = ServingMetrics()
        metrics.record_submit(1, lane=THROUGHPUT)
        metrics.record_batch(2, 0.001)
        metrics.record_response(0.002, lane=THROUGHPUT)
        metrics.record_shed(INTERACTIVE)
        out = metrics.to_dict()
        assert set(out) == self.TOP_KEYS
        assert out["shed"] == 1
        assert set(out["lanes"]) == {THROUGHPUT, INTERACTIVE}
        for lane_stats in out["lanes"].values():
            assert set(lane_stats) == {"responses", "shed", "rejected", "latency_ms"}
            assert set(lane_stats["latency_ms"]) == self.LATENCY_KEYS
        assert out["lanes"][INTERACTIVE]["shed"] == 1

    def test_memory_gauges_always_present_and_recorded(self):
        metrics = ServingMetrics()
        out = metrics.to_dict()
        assert out["bytes_resident"] == 0 and out["bytes_on_disk"] == 0
        metrics.record_memory(1024, 2048)
        out = metrics.to_dict()
        assert out["bytes_resident"] == 1024 and out["bytes_on_disk"] == 2048
        snapshot = metrics.snapshot()
        assert snapshot["bytes_resident"] == 1024 and snapshot["bytes_on_disk"] == 2048

    def test_aggregate_sums_memory_gauges(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.record_memory(100, 0)
        b.record_memory(50, 700)
        out = aggregate_metrics([a, b])
        assert out["bytes_resident"] == 150
        assert out["bytes_on_disk"] == 700

    def test_schema_is_json_serializable(self):
        import json

        metrics = ServingMetrics()
        metrics.record_response(0.001, lane=THROUGHPUT)
        json.dumps(metrics.to_dict())  # must not raise

    def test_aggregate_sums_counters_and_merges_lanes(self):
        a, b = ServingMetrics(), ServingMetrics()
        for _ in range(3):
            a.record_response(0.001, lane=THROUGHPUT)
        b.record_response(0.002, lane=INTERACTIVE)
        b.record_shed(INTERACTIVE)
        a.record_adaptive_wait(2.0, 1.0)
        b.record_adaptive_wait(4.0, 3.0)
        out = aggregate_metrics([a, b])
        assert set(out) == self.TOP_KEYS
        assert out["instances"] == 2
        assert out["responses"] == 4
        assert out["shed"] == 1
        assert out["latency_ms"]["count"] == 4
        assert out["adaptive_wait_ms"] == pytest.approx(3.0)  # mean of reporters
        assert out["lanes"][THROUGHPUT]["responses"] == 3
        assert out["lanes"][INTERACTIVE]["shed"] == 1

    def test_legacy_snapshot_still_omits_adaptive_keys(self):
        stats = ServingMetrics().snapshot()
        assert "adaptive_wait_ms" not in stats
        assert "schema_version" not in stats  # snapshot stays the legacy shape
