"""Unit tests for CompressedOperator (the scipy LinearOperator facade)."""

import numpy as np
import pytest
import scipy.sparse.linalg as sla

from repro import GOFMMConfig
from repro.api import CompressedOperator, Session
from repro.gofmm import compress as gofmm_compress

from ..conftest import make_gaussian_kernel_matrix

COMMON = dict(leaf_size=32, max_rank=24, tolerance=1e-7, neighbors=8, num_neighbor_trees=3, seed=0)


@pytest.fixture(scope="module")
def matrix():
    return make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.5, seed=0)


@pytest.fixture(scope="module")
def operator(matrix):
    return Session(matrix, GOFMMConfig(**COMMON, budget=0.2)).compress()


class TestLinearOperatorProtocol:
    def test_is_a_scipy_linear_operator(self, operator, matrix):
        assert isinstance(operator, sla.LinearOperator)
        assert operator.shape == (matrix.n, matrix.n)
        assert operator.dtype == np.float64
        assert sla.aslinearoperator(operator) is operator

    def test_matvec_matches_legacy_compress(self, operator, matrix):
        """CompressedOperator agrees with gofmm.compress(...).matvec to 1e-13."""
        legacy = gofmm_compress(matrix, GOFMMConfig(**COMMON, budget=0.2))
        w = np.random.default_rng(0).standard_normal(matrix.n)
        assert np.max(np.abs(operator.matvec(w) - legacy.matvec(w))) < 1e-13
        wide = np.random.default_rng(1).standard_normal((matrix.n, 7))
        assert np.max(np.abs(operator.matmat(wide) - legacy.matvec(wide))) < 1e-13

    def test_rmatvec_is_symmetric(self, operator, matrix):
        w = np.random.default_rng(2).standard_normal(matrix.n)
        assert np.allclose(operator.rmatvec(w), operator.matvec(w))
        assert operator.adjoint() is operator

    def test_matmul_operator_syntax(self, operator, matrix):
        w = np.random.default_rng(3).standard_normal((matrix.n, 3))
        assert np.allclose(operator @ w, operator.matmat(w))

    def test_apply_forwards_engine(self, operator, matrix):
        w = np.random.default_rng(4).standard_normal((matrix.n, 3))
        planned = operator.apply(w, engine="planned")
        reference = operator.apply(w, engine="reference")
        assert np.allclose(planned, reference, atol=1e-10)


class TestScipySolverInterop:
    def test_scipy_cg_converges(self, operator, matrix):
        """The operator drops into scipy.sparse.linalg.cg; shift keeps it well conditioned."""
        shifted = sla.LinearOperator(
            shape=operator.shape,
            dtype=operator.dtype,
            matvec=lambda v: operator.matvec(v) + 1.0 * np.asarray(v).reshape(-1),
        )
        b = np.random.default_rng(5).standard_normal(matrix.n)
        x, info = sla.cg(shifted, b, rtol=1e-9, maxiter=800)
        assert info == 0
        assert np.linalg.norm(shifted.matvec(x) - b) / np.linalg.norm(b) < 1e-8

    def test_scipy_cg_directly_on_operator(self, operator, matrix):
        """cg on K̃ itself (no shift): the kernel matrix fixture is SPD enough."""
        b = operator.matvec(np.random.default_rng(6).standard_normal(matrix.n))
        x, info = sla.cg(operator, b, rtol=1e-6, maxiter=2000)
        if info == 0:  # convergence depends on the compression-perturbed spectrum
            assert np.linalg.norm(operator.matvec(x) - b) / np.linalg.norm(b) < 1e-5
        else:  # even without full convergence cg must have made progress
            assert np.linalg.norm(operator.matvec(x) - b) < np.linalg.norm(b)

    def test_native_solve(self, operator, matrix):
        b = np.random.default_rng(7).standard_normal((matrix.n, 2))
        result = operator.solve(b, shift=1.0, tolerance=1e-9, max_iterations=500)
        assert result.converged
        assert result.solution.shape == (matrix.n, 2)
        check = operator.apply(result.solution) + 1.0 * result.solution
        assert np.linalg.norm(check - b) / np.linalg.norm(b) < 1e-7


class TestReports:
    def test_report_attached(self, operator):
        assert operator.report is not None
        assert operator.report.num_leaves > 0

    def test_delegated_reports(self, operator, matrix):
        assert operator.n == matrix.n
        assert operator.rank_summary()["mean"] > 0
        assert operator.storage_report()["total"] > 0
        assert operator.interaction_report()["num_leaves"] > 0
        assert operator.evaluation_flops(4) > 0
        assert 0 <= operator.relative_error(num_rhs=4, num_sample_rows=50) < 0.1

    def test_relative_error_engine_forwarded(self, operator):
        planned = operator.relative_error(num_rhs=4, num_sample_rows=50, engine="planned")
        reference = operator.relative_error(num_rhs=4, num_sample_rows=50, engine="reference")
        assert planned == pytest.approx(reference, rel=1e-6, abs=1e-12)

    def test_repr_mentions_shape_and_engine(self, operator):
        text = repr(operator)
        assert "CompressedOperator" in text
        assert "engine=" in text


class TestOperatorReport:
    """operator.report: CompressionReport fields + callable stable summary."""

    REPORT_KEYS = {
        "schema_version", "n", "engine", "bytes_resident", "bytes_on_disk",
        "average_rank", "max_rank", "num_leaves", "tree_depth",
        "near_pairs", "far_pairs", "compression_seconds", "stage_seconds",
    }

    def test_report_is_still_a_compression_report(self, operator):
        from repro.core.compress import CompressionReport

        assert isinstance(operator.report, CompressionReport)
        assert operator.report.num_leaves > 0

    def test_report_call_returns_stable_schema(self, operator, matrix):
        summary = operator.report()
        assert set(summary) == self.REPORT_KEYS
        assert summary["n"] == matrix.n
        assert summary["engine"] == operator.default_engine()
        assert summary["bytes_resident"] > 0
        assert summary["bytes_on_disk"] == 0  # fully in-memory operator

    def test_save_open_roundtrip_swaps_residency(self, operator, matrix, tmp_path):
        path = tmp_path / "operator.store"
        operator.save(path)
        reopened = CompressedOperator.open(path, resident="mmap")
        summary = reopened.report()
        assert summary["bytes_on_disk"] > 0
        assert summary["engine"] == "streamed"
        w = np.random.default_rng(5).standard_normal((matrix.n, 3))
        assert np.array_equal(
            reopened.apply(w), operator.apply(w, engine="reference")
        )
