"""Unit tests for the analytic machine models."""

import pytest

from repro import SchedulingError
from repro.runtime import MachineModel, Worker, arm_4, haswell_24, haswell_p100, knl_68
from repro.runtime.task import Task


def compute_task(flops=1e9, gpu_ok=False):
    return Task(task_id="t", kind="L2L" if gpu_ok else "SKEL", node_id=0, flops=flops, gpu_eligible=gpu_ok)


def memory_task(bytes_moved=1e9):
    return Task(task_id="m", kind="ANN", node_id=0, flops=1e6, bytes_moved=bytes_moved, memory_bound=True)


class TestPresets:
    def test_peak_flops_match_paper(self):
        assert haswell_24().peak_gflops == pytest.approx(998.0, rel=1e-6)
        assert knl_68().peak_gflops == pytest.approx(3046.0, rel=1e-6)
        assert arm_4().peak_gflops == pytest.approx(35.2, rel=1e-6)
        assert haswell_p100().peak_gflops > 4700.0

    def test_worker_counts(self):
        assert haswell_24().num_workers == 24
        assert knl_68().num_workers == 68
        assert arm_4().num_workers == 4
        assert haswell_p100().num_workers == 13  # 12 CPU cores + 1 GPU

    def test_machine_requires_workers(self):
        with pytest.raises(SchedulingError):
            MachineModel(name="empty", workers=[])


class TestTaskTiming:
    def test_compute_task_time_inverse_to_peak(self):
        hsw = haswell_24()
        knl = knl_68()
        task = compute_task(flops=1e12)
        # A single KNL core is slower per-core than a Haswell core at GOFMM-sized GEMMs.
        assert knl.task_seconds(task, knl.workers[0]) > hsw.task_seconds(task, hsw.workers[0])

    def test_memory_task_charged_against_bandwidth(self):
        machine = haswell_24()
        worker = machine.workers[0]
        fast = machine.task_seconds(memory_task(bytes_moved=1e6), worker)
        slow = machine.task_seconds(memory_task(bytes_moved=1e9), worker)
        assert slow > 100 * fast

    def test_gpu_rejects_non_eligible_tasks(self):
        machine = haswell_p100()
        gpu = machine.workers[-1]
        assert gpu.kind == "gpu"
        assert machine.task_seconds(compute_task(gpu_ok=False), gpu) == float("inf")

    def test_gpu_faster_on_large_eligible_tasks(self):
        machine = haswell_p100()
        gpu = machine.workers[-1]
        cpu = machine.workers[0]
        task = compute_task(flops=1e12, gpu_ok=True)
        assert machine.task_seconds(task, gpu) < machine.task_seconds(task, cpu)

    def test_gpu_pays_transfer_for_small_tasks(self):
        machine = haswell_p100()
        gpu = machine.workers[-1]
        cpu = machine.workers[0]
        small = Task(task_id="s", kind="L2L", node_id=0, flops=1e5, bytes_moved=1e8, gpu_eligible=True)
        # PCIe transfer dominates: the CPU wins on tiny tasks with large operands.
        assert machine.task_seconds(small, cpu) < machine.task_seconds(small, gpu)

    def test_best_case_picks_fastest_worker(self):
        machine = haswell_p100()
        big = compute_task(flops=1e13, gpu_ok=True)
        assert machine.best_case_seconds(big) == machine.task_seconds(big, machine.workers[-1])


class TestScaling:
    def test_with_workers_restricts(self):
        machine = haswell_24()
        half = machine.with_workers(12)
        assert half.num_workers == 12
        assert half.peak_gflops == pytest.approx(machine.peak_gflops / 2)

    def test_with_workers_validates(self):
        with pytest.raises(SchedulingError):
            haswell_24().with_workers(0)
        with pytest.raises(SchedulingError):
            arm_4().with_workers(10)
