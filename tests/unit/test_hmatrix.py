"""Unit tests for the CompressedMatrix object (storage, reports, dense form)."""

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.core.hmatrix import BlockProvider

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def compressed_pair():
    matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.2, seed=1)
    config = GOFMMConfig(
        leaf_size=25, max_rank=25, tolerance=1e-8, neighbors=6,
        budget=0.25, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=1,
    )
    return matrix, compress(matrix, config)


class TestOperatorInterface:
    def test_shape(self, compressed_pair):
        matrix, cm = compressed_pair
        assert cm.shape == (matrix.n, matrix.n)
        assert cm.n == matrix.n

    def test_matmul_operator(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(0).standard_normal((matrix.n, 2))
        assert np.allclose(cm @ w, cm.matvec(w))

    def test_transpose_matvec_equals_matvec(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(1).standard_normal(matrix.n)
        assert np.allclose(cm.matvec_transpose(w), cm.matvec(w))

    def test_dense_form_symmetric_with_symmetric_lists(self, compressed_pair):
        _, cm = compressed_pair
        dense = cm.to_dense()
        assert np.allclose(dense, dense.T, atol=1e-9 * np.abs(dense).max())

    def test_dense_form_approximates_source(self, compressed_pair):
        matrix, cm = compressed_pair
        dense = cm.to_dense()
        exact = matrix.to_dense()
        rel = np.linalg.norm(dense - exact) / np.linalg.norm(exact)
        assert rel < 5e-2


class TestReports:
    def test_rank_summary(self, compressed_pair):
        _, cm = compressed_pair
        summary = cm.rank_summary()
        assert 0 < summary["mean"] <= summary["max"] <= cm.config.max_rank
        assert summary["min"] >= 0

    def test_storage_report_consistency(self, compressed_pair):
        _, cm = compressed_pair
        report = cm.storage_report()
        assert report["total"] == pytest.approx(
            report["coefficients"] + report["near_blocks"] + report["far_blocks"]
        )
        assert report["dense_equivalent"] == cm.n**2
        # At this tiny N the representation is not necessarily smaller than
        # dense; the ratio just has to be well defined and positive.
        assert report["compression_ratio"] > 0.0

    def test_compression_ratio_exceeds_one_at_larger_scale(self):
        matrix = make_gaussian_kernel_matrix(n=512, d=3, bandwidth=2.0, seed=7)
        config = GOFMMConfig(
            leaf_size=64, max_rank=16, tolerance=1e-4, neighbors=4,
            budget=0.05, num_neighbor_trees=2, distance=DistanceMetric.KERNEL, seed=7,
        )
        cm = compress(matrix, config)
        assert cm.storage_report()["compression_ratio"] > 1.0

    def test_interaction_report(self, compressed_pair):
        _, cm = compressed_pair
        report = cm.interaction_report()
        assert report["num_leaves"] == len(cm.tree.leaves)
        assert report["near_pairs"] >= report["num_leaves"]  # each leaf is near itself
        assert report["is_hss"] == 0.0

    def test_evaluation_flops_scale_with_rhs(self, compressed_pair):
        _, cm = compressed_pair
        assert cm.evaluation_flops(num_rhs=4) == pytest.approx(4 * cm.evaluation_flops(num_rhs=1))

    def test_relative_error_reasonable(self, compressed_pair):
        _, cm = compressed_pair
        eps2 = cm.relative_error(num_rhs=4, num_sample_rows=80)
        assert 0.0 <= eps2 < 5e-2


class TestBlockProvider:
    def test_cache_hit(self, compressed_pair):
        matrix, cm = compressed_pair
        leaf = cm.tree.leaves[0]
        key = (leaf.node_id, leaf.node_id)
        assert key in cm.near_blocks
        block = cm.near_blocks.get(key)
        assert np.allclose(block, matrix.entries(leaf.indices, leaf.indices))

    def test_lazy_fallback_without_cache(self, compressed_pair):
        matrix, cm = compressed_pair
        provider = BlockProvider(cm.tree, matrix, use_skeletons=False)
        leaf = cm.tree.leaves[1]
        block = provider.get((leaf.node_id, leaf.node_id))
        assert np.allclose(block, matrix.entries(leaf.indices, leaf.indices))
        assert len(provider) == 0  # nothing stored

    def test_missing_block_without_matrix_returns_none(self, compressed_pair):
        _, cm = compressed_pair
        provider = BlockProvider(cm.tree, None, use_skeletons=True)
        assert provider.get((0, 1)) is None

    def test_cached_entries_counts(self, compressed_pair):
        _, cm = compressed_pair
        assert cm.near_blocks.cached_entries > 0
        assert cm.far_blocks.cached_entries > 0


class TestUncachedCompression:
    def test_matvec_identical_with_and_without_caching(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.2, seed=2)
        base = GOFMMConfig(
            leaf_size=25, max_rank=20, tolerance=1e-7, neighbors=6,
            budget=0.25, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=2,
        )
        cached = compress(matrix, base)
        uncached = compress(matrix, base.replace(cache_near_blocks=False, cache_far_blocks=False))
        w = np.random.default_rng(0).standard_normal((matrix.n, 3))
        assert np.allclose(cached.matvec(w), uncached.matvec(w), atol=1e-10)
        assert len(uncached.near_blocks) == 0
        assert len(uncached.far_blocks) == 0
