"""Unit tests for the exception hierarchy."""

import pytest

from repro import (
    CompressionError,
    ConfigurationError,
    EvaluationError,
    GOFMMError,
    MatrixDefinitionError,
    NotSPDError,
    RankDeficiencyError,
    SchedulingError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            NotSPDError,
            CompressionError,
            RankDeficiencyError,
            EvaluationError,
            SchedulingError,
            MatrixDefinitionError,
        ],
    )
    def test_all_derive_from_gofmm_error(self, exc):
        assert issubclass(exc, GOFMMError)
        with pytest.raises(GOFMMError):
            raise exc("boom")

    def test_value_error_compatibility(self):
        # Configuration / matrix errors behave like ValueError for generic callers.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(NotSPDError, ValueError)
        assert issubclass(MatrixDefinitionError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(CompressionError, RuntimeError)
        assert issubclass(EvaluationError, RuntimeError)
        assert issubclass(SchedulingError, RuntimeError)

    def test_rank_deficiency_is_compression_error(self):
        assert issubclass(RankDeficiencyError, CompressionError)


class TestFaultToleranceErrors:
    """The typed failures of the fault-tolerance layer."""

    def test_storage_retry_exhausted_carries_path_and_attempts(self):
        from repro.errors import StorageError, StorageRetryExhaustedError

        exc = StorageRetryExhaustedError("gave up", path="/tmp/x", attempts=3)
        assert issubclass(StorageRetryExhaustedError, StorageError)
        assert issubclass(StorageRetryExhaustedError, GOFMMError)
        assert exc.path == "/tmp/x" and exc.attempts == 3

    def test_spill_capacity_is_storage_error(self):
        from repro.errors import SpillCapacityError, StorageError

        assert issubclass(SpillCapacityError, StorageError)
        assert issubclass(SpillCapacityError, GOFMMError)

    def test_executor_stall_carries_task_labels(self):
        from repro.errors import ExecutorStallError

        exc = ExecutorStallError("stalled", stalled_tasks=["b", "a"])
        assert issubclass(ExecutorStallError, SchedulingError)
        assert issubclass(ExecutorStallError, RuntimeError)
        assert exc.stalled_tasks == ("b", "a")
        assert exc.task_label == "b"
        assert ExecutorStallError("stalled").task_label == ""

    def test_worker_crash_carries_tasks_and_attempts(self):
        from repro.errors import WorkerCrashError

        exc = WorkerCrashError("dead", failed_tasks=(0, 2), attempts=3)
        assert issubclass(WorkerCrashError, GOFMMError)
        assert issubclass(WorkerCrashError, RuntimeError)
        assert exc.failed_tasks == (0, 2) and exc.attempts == 3
