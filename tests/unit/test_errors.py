"""Unit tests for the exception hierarchy."""

import pytest

from repro import (
    CompressionError,
    ConfigurationError,
    EvaluationError,
    GOFMMError,
    MatrixDefinitionError,
    NotSPDError,
    RankDeficiencyError,
    SchedulingError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            NotSPDError,
            CompressionError,
            RankDeficiencyError,
            EvaluationError,
            SchedulingError,
            MatrixDefinitionError,
        ],
    )
    def test_all_derive_from_gofmm_error(self, exc):
        assert issubclass(exc, GOFMMError)
        with pytest.raises(GOFMMError):
            raise exc("boom")

    def test_value_error_compatibility(self):
        # Configuration / matrix errors behave like ValueError for generic callers.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(NotSPDError, ValueError)
        assert issubclass(MatrixDefinitionError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(CompressionError, RuntimeError)
        assert issubclass(EvaluationError, RuntimeError)
        assert issubclass(SchedulingError, RuntimeError)

    def test_rank_deficiency_is_compression_error(self):
        assert issubclass(RankDeficiencyError, CompressionError)
