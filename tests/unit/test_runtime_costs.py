"""Unit tests for the Table 2 cost model."""

import pytest

from repro.runtime import CostModel


@pytest.fixture()
def cost():
    return CostModel(leaf_size=512, rank=256, num_rhs=4, point_dim=6)


class TestFlopFormulas:
    def test_table2_values(self, cost):
        m, s, r, d = 512, 256, 4, 6
        assert cost.spli(1000) == 1000
        assert cost.ann() == m**2
        assert cost.skel() == 2 * s**3 + 2 * m**3
        assert cost.coef() == s**3
        assert cost.n2s(is_leaf=True) == 2 * m * s * r
        assert cost.n2s(is_leaf=False) == 2 * s**2 * r
        assert cost.s2n(is_leaf=True) == cost.n2s(is_leaf=True)
        assert cost.s2s(far_size=3) == 2 * s**2 * r * 3
        assert cost.l2l(near_size=5) == 2 * m**2 * r * 5
        assert cost.kba(near_size=2) == m**2 * 2 * d
        assert cost.skba(far_size=7) == d * s**2 * 7

    def test_generic_dispatch_matches_specific(self, cost):
        assert cost.flops("N2S", is_leaf=True) == cost.n2s(True)
        assert cost.flops("S2S", far_size=2) == cost.s2s(2)
        assert cost.flops("L2L", near_size=1) == cost.l2l(1)
        assert cost.flops("SPLI", node_size=77) == 77

    def test_unknown_kind_rejected(self, cost):
        with pytest.raises(KeyError):
            cost.flops("NOPE")

    def test_empty_lists_cost_nothing(self, cost):
        assert cost.s2s(0) == 0.0
        assert cost.l2l(0) == 0.0


class TestClassification:
    def test_memory_bound_kinds(self):
        assert CostModel.is_memory_bound("SPLI")
        assert CostModel.is_memory_bound("ANN")
        assert not CostModel.is_memory_bound("L2L")
        assert not CostModel.is_memory_bound("SKEL")

    def test_gpu_eligible_kinds(self):
        assert CostModel.is_gpu_eligible("L2L")
        assert CostModel.is_gpu_eligible("S2S")
        assert not CostModel.is_gpu_eligible("SKEL")

    def test_bytes_moved_positive(self, cost):
        for kind in ("SPLI", "ANN", "KBA", "SKBA", "N2S"):
            assert cost.bytes_moved(kind, node_size=100, near_size=2, far_size=2) > 0


class TestScaling:
    def test_cost_scales_with_rhs(self):
        c1 = CostModel(leaf_size=256, rank=128, num_rhs=1)
        c8 = CostModel(leaf_size=256, rank=128, num_rhs=8)
        assert c8.l2l(1) == 8 * c1.l2l(1)
        assert c8.n2s(True) == 8 * c1.n2s(True)
        # Compression tasks do not depend on the number of right-hand sides.
        assert c8.skel() == c1.skel()

    def test_cost_scales_with_rank(self):
        small = CostModel(leaf_size=256, rank=64)
        large = CostModel(leaf_size=256, rank=128)
        assert large.coef() == 8 * small.coef()
        assert large.s2s(1) == 4 * small.s2s(1)
