"""Unit tests for the streamed evaluation engine (:mod:`repro.core.streaming`).

The load-bearing guarantees:

* the streamed matvec is **bit-identical** to the per-node reference
  traversal on memoryless configurations (blocks uncached — near-only,
  far-only, both off), pinned with ``np.array_equal``, not a tolerance,
* chunk boundaries never change the result: a budget smaller than one
  segment (hundreds of single-block chunks) and a budget swallowing the
  whole evaluation (degenerate single chunk per stage) both reproduce the
  reference bitwise,
* ``default_engine`` prefers the streamed engine exactly when block
  caching was disabled and a source matrix is attached,
* the chunk workspace stays within ``streaming_chunk_bytes``,
* memoryless operators are servable end to end.
"""

import numpy as np
import pytest

from repro import ConfigurationError, GOFMMConfig
from repro.api import Session
from repro.config import DistanceMetric, hss_config
from repro.core import engines
from repro.errors import EvaluationError
from repro.gofmm import compress
from repro.runtime import parallel_evaluate
from repro.serving import BatchPolicy, MatvecServer

from ..conftest import make_gaussian_kernel_matrix


def make_config(**overrides) -> GOFMMConfig:
    base = dict(
        leaf_size=32, max_rank=16, tolerance=1e-7, neighbors=8,
        budget=0.15, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=0,
    )
    base.update(overrides)
    return GOFMMConfig(**base)


@pytest.fixture(scope="module")
def matrix():
    return make_gaussian_kernel_matrix(n=360, d=3, bandwidth=1.5, seed=0)


@pytest.fixture(scope="module")
def memoryless(matrix):
    return compress(matrix, make_config(cache_near_blocks=False, cache_far_blocks=False))


class TestRegistration:
    def test_streamed_registered_without_cached_block_requirement(self):
        assert engines.is_registered("streamed")
        assert not engines.get_engine("streamed").requires_cached_blocks

    def test_config_accepts_streamed(self):
        assert make_config(evaluation_engine="streamed").evaluation_engine == "streamed"

    def test_streaming_chunk_bytes_validated(self):
        with pytest.raises(ConfigurationError, match="streaming_chunk_bytes"):
            make_config(streaming_chunk_bytes=0)
        with pytest.raises(ConfigurationError, match="streaming_chunk_bytes"):
            make_config(streaming_chunk_bytes=-4096)
        assert make_config(streaming_chunk_bytes=1 << 20).streaming_chunk_bytes == 1 << 20


class TestBitIdentity:
    """streamed ≡ reference, bitwise, on every caching configuration."""

    @pytest.mark.parametrize(
        "cache_near,cache_far",
        [(False, False), (True, False), (False, True), (True, True)],
        ids=["memoryless", "near-only", "far-only", "fully-cached"],
    )
    def test_streamed_matches_reference_bitwise(self, matrix, cache_near, cache_far):
        cm = compress(
            matrix, make_config(cache_near_blocks=cache_near, cache_far_blocks=cache_far)
        )
        w = np.random.default_rng(1).standard_normal((matrix.n, 5))
        assert np.array_equal(
            cm.matvec(w, engine="streamed"), cm.matvec(w, engine="reference")
        )

    def test_vector_shape_preserved(self, memoryless, matrix):
        w = np.random.default_rng(2).standard_normal(matrix.n)
        out = memoryless.matvec(w, engine="streamed")
        assert out.shape == (matrix.n,)
        assert np.array_equal(out, memoryless.matvec(w, engine="reference"))

    def test_hss_memoryless(self, matrix):
        cm = compress(
            matrix,
            hss_config(
                leaf_size=32, max_rank=16, neighbors=8, num_neighbor_trees=3,
                distance=DistanceMetric.KERNEL, seed=0,
                cache_near_blocks=False, cache_far_blocks=False,
            ),
        )
        w = np.random.default_rng(3).standard_normal((matrix.n, 3))
        assert np.array_equal(
            cm.matvec(w, engine="streamed"), cm.matvec(w, engine="reference")
        )

    def test_repeated_calls_are_bit_stable(self, memoryless, matrix):
        w = np.random.default_rng(4).standard_normal((matrix.n, 4))
        first = memoryless.matvec(w, engine="streamed")
        for _ in range(3):
            assert np.array_equal(first, memoryless.matvec(w, engine="streamed"))


class TestChunkBoundaries:
    def test_chunk_smaller_than_one_segment(self, matrix):
        # 2 KiB budget: far smaller than any round segment — every chunk
        # degenerates to a single block, the pipeline runs hundreds of
        # chunks, and the result must still be reference-bitwise.
        cm = compress(
            matrix,
            make_config(
                cache_near_blocks=False, cache_far_blocks=False, streaming_chunk_bytes=2048
            ),
        )
        plan = cm.streaming_plan()
        assert plan.num_chunks > 50
        w = np.random.default_rng(5).standard_normal((matrix.n, 3))
        assert np.array_equal(
            cm.matvec(w, engine="streamed"), cm.matvec(w, engine="reference")
        )

    def test_single_chunk_degenerate(self, matrix):
        # A budget swallowing the whole evaluation = the planned-style
        # "everything resident at once" path, still bitwise reference.
        cm = compress(
            matrix,
            make_config(
                cache_near_blocks=False, cache_far_blocks=False, streaming_chunk_bytes=1 << 30
            ),
        )
        plan = cm.streaming_plan()
        assert len(plan.s2s_chunks) <= 1 and len(plan.l2l_chunks) <= 1
        w = np.random.default_rng(6).standard_normal((matrix.n, 3))
        assert np.array_equal(
            cm.matvec(w, engine="streamed"), cm.matvec(w, engine="reference")
        )

    def test_workspace_within_budget(self, memoryless):
        plan = memoryless.streaming_plan()
        assert plan.workspace_bytes <= memoryless.config.streaming_chunk_bytes
        report = memoryless.streaming_report()
        assert report["workspace_bytes"] <= report["chunk_budget_bytes"]

    def test_chunk_budget_rebuilds_only_plan_stage(self, matrix):
        session = Session(matrix, make_config(cache_near_blocks=False, cache_far_blocks=False))
        session.compress()
        assert session.stale_stages(streaming_chunk_bytes=1 << 20) == frozenset({"plan"})
        op = session.recompress(streaming_chunk_bytes=1 << 20)
        assert session.last_built == ("plan",)
        assert op.compressed.streaming_plan().chunk_bytes == 1 << 20


class TestDefaultEngineSelection:
    """The fallback table of :meth:`CompressedMatrix.default_engine`."""

    @pytest.mark.parametrize(
        "cache_near,cache_far,expected",
        [
            (True, True, "planned"),     # fully cached: the configured engine
            (False, False, "streamed"),  # memoryless: stream from the matrix
            (True, False, "streamed"),   # far blocks must be streamed
            (False, True, "streamed"),   # near blocks must be streamed
        ],
    )
    def test_selection(self, matrix, cache_near, cache_far, expected):
        cm = compress(
            matrix, make_config(cache_near_blocks=cache_near, cache_far_blocks=cache_far)
        )
        assert cm.default_engine() == expected

    def test_without_matrix_falls_back_to_reference(self, matrix):
        cm = compress(matrix, make_config(cache_near_blocks=False, cache_far_blocks=False))
        cm.matrix = None
        assert cm.default_engine() == "reference"

    def test_explicit_streamed_config_is_kept_even_when_cached(self, matrix):
        cm = compress(matrix, make_config(evaluation_engine="streamed"))
        assert cm.default_engine() == "streamed"

    def test_explicit_plan_opt_in_restores_planned(self, matrix):
        cm = compress(matrix, make_config(cache_near_blocks=False, cache_far_blocks=False))
        assert cm.default_engine() == "streamed"
        cm.plan()
        assert cm.default_engine() == "planned"


class TestExecutionPaths:
    def test_missing_blocks_without_matrix_raise(self, matrix):
        cm = compress(matrix, make_config(cache_near_blocks=False, cache_far_blocks=False))
        cm.matrix = None
        cm._streaming_plan = None  # force a rebuild against the detached state
        with pytest.raises(EvaluationError, match="no source matrix"):
            cm.matvec(np.zeros(matrix.n), engine="streamed")

    def test_parallel_evaluate_dispatches_streamed(self, memoryless, matrix):
        w = np.random.default_rng(7).standard_normal((matrix.n, 3))
        out = parallel_evaluate(memoryless, w, num_workers=2, engine="streamed")
        assert np.array_equal(out, memoryless.matvec(w, engine="reference"))

    def test_counters_accumulate(self, matrix):
        cm = compress(matrix, make_config(cache_near_blocks=False, cache_far_blocks=False))
        before = cm.counters.total
        cm.matvec(np.ones(matrix.n), engine="streamed")
        assert cm.counters.total > before

    def test_flops_match_planned_accounting(self, matrix):
        # Exact packing: the streamed flop model must equal the Table 2
        # model the reference/planned engines report.
        cm = compress(matrix, make_config(cache_near_blocks=False, cache_far_blocks=False))
        plan = cm.streaming_plan()
        total = sum(plan.flops_per_rhs.values())
        assert total == pytest.approx(cm.evaluation_flops(1), rel=1e-12)


class TestServingMemoryless:
    def test_memoryless_operator_served_bit_identically(self, matrix):
        operator = Session(
            matrix, make_config(cache_near_blocks=False, cache_far_blocks=False)
        ).compress()
        assert operator.default_engine() == "streamed"
        rng = np.random.default_rng(8)
        vectors = rng.standard_normal((4, matrix.n))
        server = MatvecServer(policy=BatchPolicy(max_batch=4, max_wait_ms=5.0))
        server.register("memoryless", operator)
        with server:
            served = [server.matvec("memoryless", v, timeout=60) for v in vectors]
        # the canonical-width guarantee holds for the streamed engine too:
        # a served response equals the request evaluated alone at width 4
        for vector, response in zip(vectors, served):
            direct = np.asarray(operator.apply(_padded_column(vector, matrix.n, 4)))
            assert np.array_equal(response, direct[:, 0])

    def test_entries_batched_out_matches_plain(self, matrix):
        rng = np.random.default_rng(9)
        rows = np.stack([rng.choice(matrix.n, size=12, replace=False) for _ in range(6)])
        cols = np.stack([rng.choice(matrix.n, size=9, replace=False) for _ in range(6)])
        plain = matrix.entries_batched(list(rows), list(cols))
        buffer = np.empty((6, 12, 9))
        views = matrix.entries_batched(rows, cols, out=buffer)
        for g in range(6):
            assert np.array_equal(plain[g], buffer[g])
            assert views[g].base is buffer or views[g] is buffer[g]


def _padded_column(vector: np.ndarray, n: int, width: int) -> np.ndarray:
    block = np.zeros((n, width))
    block[:, 0] = vector
    return block


class TestWorkspaceAccounting:
    """Satellite: ``workspace_bytes`` is the plan's true allocation bound."""

    @pytest.fixture(scope="class")
    def session(self, matrix):
        session = Session(matrix, make_config(cache_near_blocks=False, cache_far_blocks=False))
        session.compress()
        return session

    def _plan(self, session, chunk_bytes):
        return session.recompress(
            streaming_chunk_bytes=chunk_bytes
        ).compressed.streaming_plan()

    def test_workspace_bytes_upper_bounds_observed_allocation(self, session):
        """Property: across chunk budgets, the buffers actually allocated for
        an execution never exceed the advertised ``workspace_bytes``, and
        every chunk of the plan fits inside one buffer."""
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        @settings(max_examples=12, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(chunk_bytes=st.integers(min_value=1024, max_value=1 << 22))
        def check(chunk_bytes):
            plan = self._plan(session, chunk_bytes)
            buffers = plan._allocate_buffers()
            try:
                assert sum(b.nbytes for b in buffers) <= plan.workspace_bytes
                for chunk in plan.s2s_chunks + plan.l2l_chunks:
                    assert chunk.total_elems <= plan.buffer_elems
                # heap buffers only while within budget; disk-backed beyond it
                for buffer in buffers:
                    assert isinstance(buffer, np.memmap) == plan.spills
            finally:
                plan._release_buffers(buffers)
                plan.close()

        check()

    def test_exactly_at_budget_must_not_spill(self, session):
        """Regression: the spill trigger is strictly-greater-than — a plan
        whose workspace lands exactly on the budget allocates normally."""
        from repro.core.streaming import StreamingPlan

        base = self._plan(session, 1 << 20)
        assert base.num_chunks >= 1 and base.workspace_bytes > 0

        def clone(chunk_bytes):
            return StreamingPlan(
                layout=base.layout,
                s2s_chunks=base.s2s_chunks,
                l2l_chunks=base.l2l_chunks,
                near_blocks=base.near_blocks,
                far_blocks=base.far_blocks,
                matrix=base.matrix,
                chunk_bytes=chunk_bytes,
                stall_timeout=None,
            )

        at_budget = clone(base.workspace_bytes)
        assert not at_budget.spills
        buffers = at_budget._allocate_buffers()
        assert all(not isinstance(b, np.memmap) for b in buffers)
        w = np.random.default_rng(11).standard_normal((at_budget.layout.n, 2))
        assert np.array_equal(at_budget.execute(w), base.execute(w))

        over_budget = clone(base.workspace_bytes - 8)
        assert over_budget.spills
        over_budget.close()

    def test_over_budget_plan_spills_to_disk_and_stays_bitwise(self, matrix):
        cm = compress(
            matrix,
            make_config(
                cache_near_blocks=False, cache_far_blocks=False, streaming_chunk_bytes=2048
            ),
        )
        plan = cm.streaming_plan()
        assert plan.spills
        assert plan.workspace_bytes > plan.chunk_bytes
        report = plan.report()
        assert report["spills"] == 1.0 and "spill_bytes" in report
        w = np.random.default_rng(12).standard_normal((matrix.n, 3))
        assert np.array_equal(
            cm.matvec(w, engine="streamed"), cm.matvec(w, engine="reference")
        )
        # the execution released its arena buffers: no disk left held
        assert plan.report()["spill_bytes"] == 0.0

    def test_panel_execution_matches_per_panel_reference(self, matrix, tmp_path):
        cm = compress(
            matrix,
            make_config(cache_near_blocks=False, cache_far_blocks=False),
        )
        plan = cm.streaming_plan()
        num_rhs = 5
        w = np.random.default_rng(13).standard_normal((matrix.n, num_rhs))
        weights_path = tmp_path / "w.npy"
        out_path = tmp_path / "u.npy"
        np.save(weights_path, w)
        panel_cols = 2
        plan.execute(str(weights_path), out=str(out_path), panel_cols=panel_cols)
        expected = np.empty_like(w)
        for start in range(0, num_rhs, panel_cols):
            stop = min(start + panel_cols, num_rhs)
            expected[:, start:stop] = cm.matvec(w[:, start:stop], engine="reference")
        assert np.array_equal(np.load(out_path), expected)
