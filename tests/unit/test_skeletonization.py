"""Unit tests for nested ID skeletonization (Algorithm 2.6)."""

import numpy as np
import pytest

from repro import GOFMMConfig, RankDeficiencyError
from repro.config import DistanceMetric
from repro.core.distances import make_distance
from repro.core.interactions import build_node_neighbor_lists
from repro.core.neighbors import all_nearest_neighbors
from repro.core.skeletonization import sample_rows, skeletonize_node, skeletonize_tree
from repro.core.tree import build_tree
from repro.matrices import DenseSPD

from ..conftest import make_gaussian_kernel_matrix


def prepared_tree(n=200, leaf_size=25, max_rank=20, tolerance=1e-7, seed=0):
    matrix = make_gaussian_kernel_matrix(n=n, d=3, bandwidth=1.5, seed=seed)
    config = GOFMMConfig(
        leaf_size=leaf_size,
        max_rank=max_rank,
        tolerance=tolerance,
        neighbors=6,
        budget=0.2,
        num_neighbor_trees=3,
        distance=DistanceMetric.KERNEL,
        seed=seed,
    )
    distance = make_distance(matrix, config.distance)
    rng = np.random.default_rng(seed)
    neighbors = all_nearest_neighbors(distance, config, rng=rng)
    tree = build_tree(matrix.n, config, distance, rng=rng)
    build_node_neighbor_lists(tree, neighbors, rng=rng)
    return matrix, config, tree, neighbors


class TestSampleRows:
    def test_excludes_node_indices(self):
        matrix, config, tree, neighbors = prepared_tree()
        node = tree.leaves[0]
        rows = sample_rows(node, matrix.n, 40, neighbors, np.random.default_rng(0))
        assert np.intersect1d(rows, node.indices).size == 0

    def test_sample_size_respected(self):
        matrix, config, tree, neighbors = prepared_tree()
        node = tree.leaves[1]
        rows = sample_rows(node, matrix.n, 30, neighbors, np.random.default_rng(1))
        assert rows.size <= 2 * 30  # neighbor part + uniform part
        assert rows.size >= 20

    def test_small_complement_returns_everything(self):
        matrix, config, tree, neighbors = prepared_tree()
        root = tree.root
        left = root.left
        rows = sample_rows(left, matrix.n, matrix.n, neighbors, np.random.default_rng(2))
        assert rows.size == matrix.n - left.size

    def test_root_has_empty_sample(self):
        matrix, config, tree, neighbors = prepared_tree()
        rows = sample_rows(tree.root, matrix.n, 50, neighbors, np.random.default_rng(3))
        assert rows.size == 0

    def test_rows_unique_and_in_range(self):
        matrix, config, tree, neighbors = prepared_tree()
        node = tree.leaves[2]
        rows = sample_rows(node, matrix.n, 64, neighbors, np.random.default_rng(4))
        assert len(np.unique(rows)) == rows.size
        assert rows.min() >= 0 and rows.max() < matrix.n


class TestSkeletonizeTree:
    def test_every_non_root_node_gets_skeleton(self):
        matrix, config, tree, neighbors = prepared_tree()
        stats = skeletonize_tree(tree, matrix, config, neighbors)
        for node in tree.nodes:
            if node.is_root:
                continue
            assert node.skeleton is not None
            assert node.coeffs is not None
            assert node.skeleton_rank == node.skeleton.size
        assert stats.num_nodes == len(tree.nodes) - 1

    def test_nesting_property(self):
        """α̃ ⊂ l̃ ∪ r̃ for every internal node (the nested-skeleton property)."""
        matrix, config, tree, neighbors = prepared_tree()
        skeletonize_tree(tree, matrix, config, neighbors)
        for node in tree.nodes:
            if node.is_root or node.is_leaf:
                continue
            left, right = node.children()
            child_skeletons = np.union1d(left.skeleton, right.skeleton)
            assert np.all(np.isin(node.skeleton, child_skeletons))

    def test_leaf_skeleton_subset_of_indices(self):
        matrix, config, tree, neighbors = prepared_tree()
        skeletonize_tree(tree, matrix, config, neighbors)
        for leaf in tree.leaves:
            assert np.all(np.isin(leaf.skeleton, leaf.indices))

    def test_rank_bounded_by_config(self):
        matrix, config, tree, neighbors = prepared_tree(max_rank=12)
        stats = skeletonize_tree(tree, matrix, config, neighbors)
        assert stats.max_rank <= 12

    def test_coeff_shapes(self):
        matrix, config, tree, neighbors = prepared_tree()
        skeletonize_tree(tree, matrix, config, neighbors)
        for node in tree.nodes:
            if node.is_root:
                continue
            if node.is_leaf:
                assert node.coeffs.shape == (node.skeleton_rank, node.size)
            else:
                left, right = node.children()
                assert node.coeffs.shape == (node.skeleton_rank, left.skeleton_rank + right.skeleton_rank)

    def test_leaf_offdiagonal_block_approximation(self):
        """The sampled ID should approximate the true off-diagonal block well."""
        matrix, config, tree, neighbors = prepared_tree(max_rank=25, tolerance=1e-9)
        skeletonize_tree(tree, matrix, config, neighbors)
        leaf = tree.leaves[0]
        outside = np.setdiff1d(np.arange(matrix.n), leaf.indices)
        exact = matrix.entries(outside, leaf.indices)
        approx = matrix.entries(outside, leaf.skeleton) @ leaf.coeffs
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert rel < 5e-2

    def test_looser_tolerance_gives_smaller_average_rank(self):
        matrix, config, tree, neighbors = prepared_tree(tolerance=1e-2, max_rank=25)
        loose = skeletonize_tree(tree, matrix, config, neighbors)
        matrix2, config2, tree2, neighbors2 = prepared_tree(tolerance=1e-9, max_rank=25)
        tight = skeletonize_tree(tree2, matrix2, config2, neighbors2)
        assert loose.average_rank <= tight.average_rank

    def test_postorder_violation_detected(self):
        matrix, config, tree, neighbors = prepared_tree()
        internal = next(node for node in tree.nodes if not node.is_leaf and not node.is_root)
        with pytest.raises(RankDeficiencyError):
            skeletonize_node(internal, matrix, config, neighbors, np.random.default_rng(0))

    def test_secure_accuracy_raises_on_zero_matrix(self):
        zero_like = DenseSPD(np.eye(64) * 1e-300 + np.eye(64), validate=False)
        config = GOFMMConfig(
            leaf_size=16, max_rank=8, tolerance=1e-3, budget=0.0,
            distance=DistanceMetric.LEXICOGRAPHIC, secure_accuracy=True,
        )
        tree = build_tree(64, config, distance=None)
        # Off-diagonal blocks of the identity are exactly zero -> rank 0 everywhere.
        with pytest.raises(RankDeficiencyError):
            skeletonize_tree(tree, zero_like, config, None)

    def test_zero_offdiagonal_allowed_without_secure_accuracy(self):
        identity = DenseSPD(np.eye(64))
        config = GOFMMConfig(
            leaf_size=16, max_rank=8, tolerance=1e-3, budget=0.0,
            distance=DistanceMetric.LEXICOGRAPHIC, secure_accuracy=False,
        )
        tree = build_tree(64, config, distance=None)
        stats = skeletonize_tree(tree, identity, config, None)
        assert stats.max_rank == 0
