"""Unit tests for the telemetry layer (repro.obs): tracer, counters, export.

Covers the tentpole guarantees of the observability PR:

* span recording — nesting depth, attributes, per-thread buffers, and the
  module-level activation protocol (``get_tracer`` / ``set_tracer`` /
  ``tracing``),
* thread safety — concurrent recording from worker threads never corrupts
  buffers and preserves per-thread parent/child nesting,
* the Chrome trace-event export is valid JSON with the expected span names
  for a full compress → streamed matvec → served batch run, and the
  ``python -m repro.obs summarize`` CLI consumes it,
* the pinned overhead guard — a disabled tracer costs one attribute check
  per instrumentation site, and tracing never changes numerical results
  (bit-identity across all engines),
* schema pins — ``ServingMetrics.to_dict`` v3 (counters section, v2 keys
  unchanged) and ``CompressedOperator.report()`` v2 (``stage_seconds``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.api import Session
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace,
    format_summary,
    get_tracer,
    set_tracer,
    summary,
    tracing,
    write_chrome_trace,
)
from repro.obs import counters as obs_counters
from repro.runtime import parallel_evaluate
from repro.serving import BatchPolicy, MatvecServer
from repro.serving.metrics import METRICS_SCHEMA_VERSION, ServingMetrics, aggregate_metrics

from ..conftest import make_gaussian_kernel_matrix

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

#: Stable-schema keys of ServingMetrics.to_dict as of schema v2 — pinned so
#: the v3 counters addition provably left them untouched.
V2_METRIC_KEYS = {
    "schema_version", "instances", "requests", "responses", "errors",
    "rejected", "shed", "batches", "batched_requests", "batch_occupancy",
    "reloads", "reload_failures", "max_queue_depth", "adaptive_wait_ms",
    "latency_ewma_ms", "bytes_resident", "bytes_on_disk", "latency_ms",
    "batch_eval_ms", "batch_sizes", "lanes",
}


def small_config(**overrides) -> GOFMMConfig:
    base = dict(
        leaf_size=32, max_rank=24, tolerance=1e-7, neighbors=8,
        budget=0.2, num_neighbor_trees=3, seed=0,
    )
    base.update(overrides)
    return GOFMMConfig(**base)


@pytest.fixture(scope="module")
def traced_run():
    """One fully traced compress → streamed matvec → served batch run."""
    obs_counters.reset()
    tracer = Tracer()
    matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.5, seed=3)
    session = Session(matrix, small_config(), tracer=tracer)
    t0 = time.perf_counter()
    operator = session.compress()
    compress_wall = time.perf_counter() - t0
    w = np.random.default_rng(0).standard_normal((matrix.n, 4))
    with tracing(tracer):
        operator.apply(w, engine="streamed")
    server = MatvecServer(policy=BatchPolicy(max_batch=4, max_wait_ms=2.0), tracer=tracer)
    server.register("op", operator)
    with server:
        server.matvec("op", w[:, 0])
    return {
        "tracer": tracer,
        "session": session,
        "operator": operator,
        "compress_wall": compress_wall,
        "counters": obs_counters.snapshot(),
    }


class TestTracer:
    def test_span_records_name_duration_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", n=3) as span:
            span.set(extra="yes")
        (recorded,) = tracer.spans()
        assert recorded.name == "outer"
        assert recorded.attrs == {"n": 3, "extra": "yes"}
        assert recorded.end >= recorded.start
        assert recorded.depth == 0
        assert not recorded.is_instant

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert [by_name[n].depth for n in "abc"] == [0, 1, 2]
        # children are contained in their parents
        assert by_name["a"].start <= by_name["b"].start
        assert by_name["b"].end <= by_name["a"].end

    def test_instant(self):
        tracer = Tracer()
        tracer.instant("tick", k=1)
        (span,) = tracer.spans()
        assert span.is_instant and span.duration == 0.0 and span.attrs == {"k": 1}

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans() == []

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", a=1) as span:
            span.set(b=2)  # must be accepted and discarded
        NULL_TRACER.instant("x")
        assert NULL_TRACER.spans() == []
        assert isinstance(NULL_TRACER, NullTracer)

    def test_activation_protocol(self):
        assert get_tracer() is NULL_TRACER
        tracer = Tracer()
        with tracing(tracer):
            assert get_tracer() is tracer
            with tracing(None):
                assert get_tracer() is NULL_TRACER
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_disabled_maps_to_null(self):
        previous = set_tracer(NullTracer())
        try:
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(previous)


class TestThreadSafety:
    def test_concurrent_recording_is_lossless_and_nested(self):
        tracer = Tracer()
        threads, per_thread = 8, 50

        def hammer(i: int) -> None:
            for j in range(per_thread):
                with tracer.span("parent", worker=i, j=j):
                    with tracer.span("child", worker=i, j=j):
                        pass

        workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()

        spans = tracer.spans()
        assert len(spans) == threads * per_thread * 2
        by_thread: dict = {}
        for span in spans:
            by_thread.setdefault(span.thread_id, []).append(span)
        assert len(by_thread) == threads
        for mine in by_thread.values():
            # every child sits at depth 1 inside some depth-0 parent of the
            # same thread (interval containment; ties allowed at clock
            # resolution)
            parents = [s for s in mine if s.name == "parent"]
            children = [s for s in mine if s.name == "child"]
            assert len(parents) == len(children) == per_thread
            assert {s.depth for s in parents} == {0}
            assert {s.depth for s in children} == {1}
            for child in children:
                assert any(
                    p.start <= child.start and child.end <= p.end for p in parents
                )

    def test_worker_pool_matvec_spans_land_per_thread(self):
        matrix = make_gaussian_kernel_matrix(n=160, d=3, bandwidth=1.5, seed=5)
        from repro.gofmm import compress

        compressed = compress(matrix, small_config())
        compressed.plan()
        w = np.random.default_rng(0).standard_normal((matrix.n, 8))
        tracer = Tracer()
        with tracing(tracer):
            parallel_evaluate(compressed, w, num_workers=4, engine="planned")
        tasks = [s for s in tracer.spans() if s.name == "executor.task"]
        assert tasks, "worker tasks were not traced"
        # spans recorded from the pool's threads, not the submitting thread
        assert all(s.thread_id != threading.get_ident() for s in tasks)
        for span in tasks:
            assert span.end >= span.start and "task" in span.attrs


class TestFullRunTrace:
    REQUIRED_SPANS = {
        "session.partition", "session.neighbors", "session.interactions",
        "session.skeletons", "session.blocks", "session.plan",
        "skeletonize.level",
        "eval.n2s", "eval.s2s", "eval.s2n", "eval.l2l",
        "stream.chunk.fill",
        "serve.batch.assemble", "serve.batch.gemm",
    }

    def test_expected_span_names(self, traced_run):
        names = {s.name for s in traced_run["tracer"].spans()}
        assert self.REQUIRED_SPANS <= names

    def test_skeleton_spans_carry_level_and_counts(self, traced_run):
        levels = [s for s in traced_run["tracer"].spans() if s.name == "skeletonize.level"]
        assert levels
        for span in levels:
            assert span.attrs["nodes"] >= 1
            assert span.attrs["level"] >= 1
            assert span.attrs["entries"] >= 0

    def test_chrome_export_is_valid(self, traced_run, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_run["tracer"], path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "i", "M")
            assert "pid" in event and "tid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0 and event["ts"] >= 0
        # worker threads appear as named tracks
        metadata = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert metadata
        assert data["otherData"]["counters"] == traced_run["counters"]
        assert chrome_trace(traced_run["tracer"])["traceEvents"]

    def test_summarize_cli(self, traced_run, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_run["tracer"], path)
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "summarize", str(path)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "span" in proc.stdout
        proc_json = subprocess.run(
            [sys.executable, "-m", "repro.obs", "summarize", str(path), "--json"],
            capture_output=True, text=True, env=env,
        )
        assert proc_json.returncode == 0
        assert json.loads(proc_json.stdout)["total_spans"] > 0

    def test_summary_dict_and_format(self, traced_run):
        report = summary(traced_run["tracer"])
        assert report["total_spans"] == len(traced_run["tracer"].spans())
        assert "session.skeletons" in report["by_name"]
        rendered = format_summary(report)
        assert "session.skeletons" in rendered

    def test_counters_advanced(self, traced_run):
        counters = traced_run["counters"]
        assert counters["kernel_entries_evaluated"] > 0
        assert counters["batches_assembled"] >= 1
        assert counters["batch_requests"] >= 1
        assert counters["gemm_bytes_n2s"] > 0

    def test_stage_timings_cover_compression_wall(self, traced_run):
        timings = traced_run["session"].stage_timings
        assert set(timings) >= {
            "partition", "neighbors", "interactions", "skeletons", "blocks",
        }
        total = sum(timings.values())
        wall = traced_run["compress_wall"]
        assert 0 < total <= wall * 1.05
        # the stages are the compression: unaccounted overhead stays small
        assert total >= wall * 0.5

    def test_report_schema_v2(self, traced_run):
        report = traced_run["operator"].report()
        assert report["schema_version"] == 2
        stage_seconds = report["stage_seconds"]
        assert stage_seconds and all(v >= 0 for v in stage_seconds.values())
        assert abs(sum(stage_seconds.values()) - report["compression_seconds"]) < 1e-9


class TestOverheadAndBitIdentity:
    def test_disabled_check_is_cheap(self):
        # the entire disabled-telemetry cost at each instrumentation site:
        # one global load + one attribute read
        iterations = 50_000
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            for _ in range(iterations):
                if get_tracer().enabled:  # pragma: no cover - disabled here
                    raise AssertionError
            best = min(best, time.perf_counter() - t0)
        per_check = best / iterations
        assert per_check < 2e-6  # generous: ~100ns typical

    def test_disabled_overhead_below_budget_on_planned_matvec(self):
        matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.5, seed=7)
        from repro.gofmm import compress

        compressed = compress(matrix, small_config())
        compressed.plan()
        w = np.random.default_rng(0).standard_normal((matrix.n, 8))
        compressed.matvec(w, engine="planned")  # warm
        matvec_best = float("inf")
        for _ in range(7):
            t0 = time.perf_counter()
            compressed.matvec(w, engine="planned")
            matvec_best = min(matvec_best, time.perf_counter() - t0)
        # per-check cost measured the same way as above
        t0 = time.perf_counter()
        for _ in range(50_000):
            get_tracer()
        per_check = (time.perf_counter() - t0) / 50_000
        # a planned matvec crosses a handful of instrumentation sites (one
        # enabled-check before the four-pass execute, plus engine dispatch);
        # at a generous 16 sites the disabled cost must stay under the 3%
        # acceptance budget even on this sub-millisecond problem
        assert 16 * per_check < 0.03 * matvec_best

    @pytest.mark.parametrize("engine", ["reference", "planned", "streamed"])
    def test_bit_identity_with_tracing(self, engine):
        matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.5, seed=9)
        from repro.gofmm import compress

        compressed = compress(matrix, small_config())
        w = np.random.default_rng(2).standard_normal((matrix.n, 4))
        plain = compressed.matvec(w, engine=engine)
        with tracing(Tracer()):
            traced = compressed.matvec(w, engine=engine)
        assert np.array_equal(plain, traced)

    def test_traced_compression_matches_untraced(self):
        matrix_a = make_gaussian_kernel_matrix(n=160, d=3, bandwidth=1.5, seed=11)
        matrix_b = make_gaussian_kernel_matrix(n=160, d=3, bandwidth=1.5, seed=11)
        w = np.random.default_rng(3).standard_normal((160, 2))
        plain = Session(matrix_a, small_config()).compress()
        traced = Session(matrix_b, small_config(), tracer=Tracer()).compress()
        # the traced reference backend switches postorder → level sweep;
        # per-node rng streams make the skeletons (and results) bit-identical
        assert np.array_equal(plain.apply(w), traced.apply(w))


class TestCounters:
    def test_vocabulary_always_present(self):
        registry = obs_counters.CounterRegistry()
        snapshot = registry.snapshot()
        assert set(snapshot) == set(obs_counters.VOCABULARY)
        assert all(v == 0 for v in snapshot.values())

    def test_add_gauge_reset(self):
        registry = obs_counters.CounterRegistry()
        registry.add("blocks_materialized", 3)
        registry.add("blocks_materialized")
        registry.set_gauge("custom_gauge", 7.5)
        assert registry.get("blocks_materialized") == 4
        assert registry.snapshot()["custom_gauge"] == 7.5
        assert registry.snapshot(names=["custom_gauge", "missing"]) == {
            "custom_gauge": 7.5, "missing": 0,
        }
        registry.reset()
        assert registry.get("blocks_materialized") == 0
        assert "custom_gauge" not in registry.snapshot()

    def test_module_conveniences_share_process_registry(self):
        obs_counters.reset()
        try:
            obs_counters.add("requests_shed", 2)
            assert obs_counters.registry().get("requests_shed") == 2
            assert obs_counters.snapshot()["requests_shed"] == 2
        finally:
            obs_counters.reset()


class TestServingMetricsSchema:
    def test_v3_counters_section(self):
        obs_counters.reset()
        try:
            obs_counters.add("batches_assembled", 5)
            rendered = ServingMetrics().to_dict()
            assert rendered["schema_version"] == METRICS_SCHEMA_VERSION == 3
            assert set(rendered["counters"]) == set(obs_counters.VOCABULARY)
            assert rendered["counters"]["batches_assembled"] == 5
        finally:
            obs_counters.reset()

    def test_v2_keys_unchanged(self):
        rendered = ServingMetrics().to_dict()
        assert V2_METRIC_KEYS <= set(rendered)
        assert set(rendered) == V2_METRIC_KEYS | {"counters"}

    def test_aggregate_sums_counters(self):
        obs_counters.reset()
        try:
            obs_counters.add("requests_shed", 3)
            a, b = ServingMetrics(), ServingMetrics()
            a.record_submit(1)
            b.record_submit(1)
            merged = aggregate_metrics([a, b])
            assert merged["instances"] == 2
            assert merged["requests"] == 2
            # the registry is process-wide: both instances report the same
            # values and the rollup sums them (one registry per shard
            # process in a real cluster)
            assert merged["counters"]["requests_shed"] == 6
        finally:
            obs_counters.reset()


class TestStructuredLogging:
    def test_loggers_live_under_repro_namespace(self):
        from repro.obs import get_logger

        logger = get_logger("serving.batcher")
        assert logger.name == "repro.serving.batcher"

    def test_shard_recovery_is_logged(self, caplog):
        from repro.serving.cluster.health import log_recovery

        with caplog.at_level("WARNING", logger="repro.serving.cluster.health"):
            log_recovery("shard-0", "restarted", 1)
            log_recovery("shard-1", "routed-around", 3)
        messages = [r.getMessage() for r in caplog.records]
        assert any("rebuilt in place" in m for m in messages)
        assert any("routed around" in m for m in messages)
