"""Unit tests for the geometry-oblivious distances of §2.1."""

import numpy as np
import pytest

from repro import ConfigurationError, NotSPDError
from repro.config import DistanceMetric
from repro.core.distances import AngleDistance, GeometricDistance, KernelDistance, make_distance
from repro.matrices import DenseSPD, KernelMatrix
from repro.matrices.kernels import GaussianKernel

from ..conftest import make_gaussian_kernel_matrix, make_random_spd


@pytest.fixture(scope="module")
def gram_setup():
    """An SPD matrix whose Gram vectors we know explicitly (K = ΦᵀΦ)."""
    gen = np.random.default_rng(0)
    phi = gen.standard_normal((12, 30))  # 30 Gram vectors in R^12
    k = phi.T @ phi + 1e-8 * np.eye(30)
    return DenseSPD(k), phi


class TestKernelDistance:
    def test_matches_gram_vector_distance(self, gram_setup):
        matrix, phi = gram_setup
        dist = KernelDistance(matrix)
        i, j = 3, 17
        expected = np.linalg.norm(phi[:, i] - phi[:, j]) ** 2
        got = dist.pairwise(np.array([i]), np.array([j]))[0, 0]
        assert got == pytest.approx(expected, rel=1e-6)

    def test_zero_on_diagonal(self, gram_setup):
        matrix, _ = gram_setup
        dist = KernelDistance(matrix)
        idx = np.arange(10)
        assert np.allclose(np.diag(dist.pairwise(idx, idx)), 0.0, atol=1e-8)

    def test_symmetry(self, gram_setup):
        matrix, _ = gram_setup
        dist = KernelDistance(matrix)
        idx = np.arange(15)
        d = dist.pairwise(idx, idx)
        assert np.allclose(d, d.T, atol=1e-10)

    def test_centroid_distance_matches_explicit(self, gram_setup):
        matrix, phi = gram_setup
        dist = KernelDistance(matrix)
        sample = np.array([0, 4, 9, 20])
        centroid = phi[:, sample].mean(axis=1)
        expected = np.linalg.norm(phi - centroid[:, None], axis=0) ** 2
        got = dist.to_centroid(np.arange(30), sample)
        assert np.allclose(got, expected, rtol=1e-6, atol=1e-8)

    def test_rejects_non_spd(self):
        bad = DenseSPD(np.diag([1.0, -1.0, 2.0]), validate=False)
        with pytest.raises(NotSPDError):
            KernelDistance(bad)


class TestAngleDistance:
    def test_matches_gram_vector_angles(self, gram_setup):
        matrix, phi = gram_setup
        dist = AngleDistance(matrix)
        i, j = 5, 22
        cos = phi[:, i] @ phi[:, j] / (np.linalg.norm(phi[:, i]) * np.linalg.norm(phi[:, j]))
        expected = 1.0 - cos**2
        got = dist.pairwise(np.array([i]), np.array([j]))[0, 0]
        assert got == pytest.approx(expected, rel=1e-6, abs=1e-10)

    def test_range(self, gram_setup):
        matrix, _ = gram_setup
        dist = AngleDistance(matrix)
        idx = np.arange(30)
        d = dist.pairwise(idx, idx)
        assert np.all(d >= 0.0)
        assert np.all(d <= 1.0 + 1e-10)

    def test_collinear_vectors_have_zero_distance(self):
        phi = np.array([[1.0, 2.0, 0.0], [0.0, 0.0, 1.0]])  # columns 0,1 collinear
        k = phi.T @ phi + 1e-12 * np.eye(3)
        dist = AngleDistance(DenseSPD(k, validate=False))
        d01 = dist.pairwise(np.array([0]), np.array([1]))[0, 0]
        d02 = dist.pairwise(np.array([0]), np.array([2]))[0, 0]
        assert d01 < 1e-8
        assert d02 > 0.9

    def test_centroid_distance_in_range(self, gram_setup):
        matrix, _ = gram_setup
        dist = AngleDistance(matrix)
        values = dist.to_centroid(np.arange(30), np.array([1, 2, 3]))
        assert np.all(values >= 0.0) and np.all(values <= 1.0 + 1e-10)


class TestGeometricDistance:
    def test_matches_euclidean(self):
        pts = np.random.default_rng(1).standard_normal((20, 3))
        dist = GeometricDistance(pts)
        d = dist.pairwise(np.arange(20), np.arange(20))
        direct = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(d, direct, atol=1e-10)

    def test_centroid(self):
        pts = np.random.default_rng(2).standard_normal((10, 2))
        dist = GeometricDistance(pts)
        sample = np.array([0, 1, 2])
        expected = ((pts - pts[sample].mean(axis=0)) ** 2).sum(axis=1)
        assert np.allclose(dist.to_centroid(np.arange(10), sample), expected)

    def test_requires_2d(self):
        with pytest.raises(ConfigurationError):
            GeometricDistance(np.arange(5.0))


class TestKernelVsGeometric:
    def test_kernel_distance_orders_like_geometry_for_gaussian(self):
        """For a Gaussian kernel, Gram-ℓ2 distance is monotone in geometric distance."""
        matrix = make_gaussian_kernel_matrix(n=64, d=2, bandwidth=2.0, seed=3)
        kernel_dist = KernelDistance(matrix)
        geo_dist = GeometricDistance(matrix.coordinates)
        idx = np.arange(64)
        dk = kernel_dist.pairwise(np.array([0]), idx)[0]
        dg = geo_dist.pairwise(np.array([0]), idx)[0]
        # Spearman-like check: the orderings agree.
        assert np.array_equal(np.argsort(dk), np.argsort(dg))


class TestFactory:
    def test_geometric_requires_coordinates(self, random_spd_matrix):
        with pytest.raises(ConfigurationError):
            make_distance(random_spd_matrix, DistanceMetric.GEOMETRIC)

    def test_geometric_uses_matrix_coordinates(self):
        matrix = make_gaussian_kernel_matrix(n=32, d=2)
        dist = make_distance(matrix, DistanceMetric.GEOMETRIC)
        assert isinstance(dist, GeometricDistance)

    def test_metric_free_orderings_return_none(self, random_spd_matrix):
        assert make_distance(random_spd_matrix, DistanceMetric.LEXICOGRAPHIC) is None
        assert make_distance(random_spd_matrix, DistanceMetric.RANDOM) is None

    def test_gram_metrics(self, random_spd_matrix):
        assert isinstance(make_distance(random_spd_matrix, DistanceMetric.KERNEL), KernelDistance)
        assert isinstance(make_distance(random_spd_matrix, DistanceMetric.ANGLE), AngleDistance)
