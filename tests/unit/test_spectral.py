"""Unit tests for the pseudo-spectral operators (K15–K17)."""

import numpy as np
import pytest

from repro.matrices.spectral import (
    fourier_diff_matrix,
    fourier_second_diff_matrix,
    pseudo_spectral_3d,
    pseudo_spectral_adr_2d,
)


class TestFourierDifferentiation:
    def test_first_derivative_of_sine(self):
        n = 32
        h = 2.0 * np.pi / n
        x = np.arange(n) * h
        d1 = fourier_diff_matrix(n)
        assert np.allclose(d1 @ np.sin(x), np.cos(x), atol=1e-8)

    def test_second_derivative_of_sine(self):
        n = 32
        x = np.arange(n) * 2.0 * np.pi / n
        d2 = fourier_second_diff_matrix(n)
        assert np.allclose(d2 @ np.sin(2 * x), -4.0 * np.sin(2 * x), atol=1e-7)

    def test_first_derivative_antisymmetric(self):
        d1 = fourier_diff_matrix(16)
        assert np.allclose(d1, -d1.T, atol=1e-12)

    def test_second_derivative_symmetric(self):
        d2 = fourier_second_diff_matrix(16)
        assert np.allclose(d2, d2.T, atol=1e-12)

    def test_odd_grid_supported(self):
        n = 17
        x = np.arange(n) * 2.0 * np.pi / n
        d1 = fourier_diff_matrix(n)
        assert np.allclose(d1 @ np.sin(x), np.cos(x), atol=1e-8)

    def test_constant_in_nullspace(self):
        d1 = fourier_diff_matrix(20)
        assert np.allclose(d1 @ np.ones(20), 0.0, atol=1e-10)


@pytest.mark.parametrize(
    "builder",
    [lambda n: pseudo_spectral_adr_2d(n, seed=0), lambda n: pseudo_spectral_3d(n, seed=0)],
    ids=["K15-2d", "K17-3d"],
)
class TestPseudoSpectralMatrices:
    def test_spd(self, builder):
        m = builder(64)
        a = m.array
        assert np.allclose(a, a.T, atol=1e-9)
        assert np.linalg.eigvalsh(a).min() > 0.0

    def test_size(self, builder):
        assert builder(50).n == 50

    def test_dense_coupling(self, builder):
        # Spectral differentiation couples every grid point: the matrix is
        # genuinely dense (that is why these matrices are hard to compress).
        a = builder(60).array
        fraction_nonzero = np.mean(np.abs(a) > 1e-12)
        assert fraction_nonzero > 0.5


class TestHighRankCharacter:
    def test_off_diagonal_rank_higher_than_smooth_matrix(self):
        """The K15 family should carry much higher off-diagonal rank than K02."""
        from repro.matrices.stencils import regularized_inverse_squared_laplacian_2d

        n = 128
        spectral = pseudo_spectral_adr_2d(n, seed=0).array
        smooth = regularized_inverse_squared_laplacian_2d(n).array

        def offdiag_rank(a, tol=1e-6):
            block = a[: n // 2, n // 2 :]
            s = np.linalg.svd(block, compute_uv=False)
            return int(np.sum(s > tol * s[0]))

        assert offdiag_rank(spectral) > 2 * offdiag_rank(smooth)
