"""Unit tests for the HODLR baseline."""

import numpy as np
import pytest

from repro.baselines import compress_hodlr
from repro.matrices import build_matrix

from ..conftest import make_gaussian_kernel_matrix, make_random_spd


class TestHODLR:
    def test_matvec_accuracy_on_structured_matrix(self):
        matrix = build_matrix("K02", 256)
        hodlr = compress_hodlr(matrix, leaf_size=32, max_rank=32, tolerance=1e-9)
        dense = matrix.to_dense()
        w = np.random.default_rng(0).standard_normal((256, 3))
        err = np.linalg.norm(hodlr.matvec(w) - dense @ w) / np.linalg.norm(dense @ w)
        assert err < 1e-4

    def test_to_dense_symmetric(self):
        matrix = build_matrix("K02", 128)
        hodlr = compress_hodlr(matrix, leaf_size=32, max_rank=32, tolerance=1e-8)
        dense = hodlr.to_dense()
        assert np.allclose(dense, dense.T, atol=1e-10)

    def test_matvec_matches_to_dense(self):
        matrix = make_gaussian_kernel_matrix(n=120, d=2, bandwidth=2.0, seed=0)
        hodlr = compress_hodlr(matrix, leaf_size=30, max_rank=20, tolerance=1e-8)
        w = np.random.default_rng(1).standard_normal(120)
        assert np.allclose(hodlr.matvec(w), hodlr.to_dense() @ w, atol=1e-8)

    def test_single_rhs_and_matrix_rhs(self):
        matrix = make_gaussian_kernel_matrix(n=100, d=2, seed=2)
        hodlr = compress_hodlr(matrix, leaf_size=25, max_rank=16)
        w = np.random.default_rng(2).standard_normal((100, 4))
        out = hodlr @ w
        assert out.shape == (100, 4)
        assert np.allclose(out[:, 0], hodlr.matvec(w[:, 0]), atol=1e-10)

    def test_small_matrix_is_stored_densely(self):
        matrix = make_random_spd(20, seed=3)
        hodlr = compress_hodlr(matrix, leaf_size=32, max_rank=8)
        assert hodlr.root.is_leaf
        assert np.allclose(hodlr.to_dense(), matrix.array)

    def test_rank_cap_respected(self):
        matrix = make_random_spd(96, seed=4, decay=0.1)  # slow decay: ranks hit the cap
        hodlr = compress_hodlr(matrix, leaf_size=24, max_rank=10, tolerance=1e-14)
        assert max(hodlr.ranks) <= 10

    def test_storage_smaller_than_dense_for_structured(self):
        matrix = build_matrix("K02", 256)
        hodlr = compress_hodlr(matrix, leaf_size=32, max_rank=24, tolerance=1e-6)
        assert hodlr.storage_entries() < 256 * 256

    def test_entry_evaluations_subquadratic_for_low_rank(self):
        matrix = build_matrix("K02", 256)
        hodlr = compress_hodlr(matrix, leaf_size=32, max_rank=16, tolerance=1e-5)
        # ACA touches O(s (p+n)) entries per block, far fewer than p*n overall.
        assert hodlr.entry_evaluations < 0.6 * 256 * 256

    def test_average_rank_reported(self):
        matrix = build_matrix("K04", 128)
        hodlr = compress_hodlr(matrix, leaf_size=32, max_rank=32, tolerance=1e-6)
        assert 0 < hodlr.average_rank <= 32
