"""Unit tests for the Near/Far interaction lists (Algorithms 2.3–2.5)."""

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.config import DistanceMetric
from repro.core.distances import make_distance
from repro.core.interactions import (
    build_far_lists_paper,
    build_far_lists_symmetric,
    build_interaction_lists,
    build_near_lists,
    build_node_neighbor_lists,
    coverage_matrix,
)
from repro.core.neighbors import all_nearest_neighbors
from repro.core.tree import build_tree

from ..conftest import make_gaussian_kernel_matrix


def build_setup(n=240, budget=0.3, symmetrize=True, leaf_size=30, seed=0):
    matrix = make_gaussian_kernel_matrix(n=n, d=3, bandwidth=1.0, seed=seed)
    config = GOFMMConfig(
        leaf_size=leaf_size,
        max_rank=16,
        neighbors=8,
        budget=budget,
        num_neighbor_trees=4,
        distance=DistanceMetric.KERNEL,
        symmetrize_lists=symmetrize,
        seed=seed,
    )
    distance = make_distance(matrix, config.distance)
    rng = np.random.default_rng(seed)
    neighbors = all_nearest_neighbors(distance, config, rng=rng)
    tree = build_tree(matrix.n, config, distance, rng=rng)
    build_node_neighbor_lists(tree, neighbors, rng=rng)
    return matrix, config, tree, neighbors


class TestNodeNeighborLists:
    def test_every_node_has_list(self):
        _, _, tree, _ = build_setup()
        for node in tree.nodes:
            assert node.neighbor_list is not None
            assert node.neighbor_list.size > 0

    def test_leaf_list_contains_own_indices(self):
        _, _, tree, neighbors = build_setup()
        leaf = tree.leaves[0]
        # Each index is its own nearest neighbor, so it must appear in N(leaf).
        assert np.all(np.isin(leaf.indices, leaf.neighbor_list))

    def test_internal_list_is_union_of_children(self):
        _, _, tree, _ = build_setup()
        for node in tree.nodes:
            if node.is_leaf:
                continue
            left, right = node.children()
            union = np.union1d(left.neighbor_list, right.neighbor_list)
            assert np.all(np.isin(node.neighbor_list, union))


class TestNearLists:
    def test_leaf_always_near_itself(self):
        _, config, tree, neighbors = build_setup()
        near = build_near_lists(tree, neighbors, config)
        for leaf in tree.leaves:
            assert leaf.node_id in near[leaf.node_id]

    def test_budget_zero_gives_hss(self):
        _, config, tree, neighbors = build_setup(budget=0.0)
        near = build_near_lists(tree, neighbors, config)
        assert all(members == [leaf_id] for leaf_id, members in near.items())

    def test_symmetry_enforced(self):
        _, config, tree, neighbors = build_setup(budget=0.4, symmetrize=True)
        near = build_near_lists(tree, neighbors, config)
        for beta, members in near.items():
            for alpha in members:
                assert beta in near[alpha]

    def test_budget_caps_list_size(self):
        matrix, config, tree, neighbors = build_setup(budget=0.25, symmetrize=False)
        near = build_near_lists(tree, neighbors, config)
        cap = config.max_near_size(matrix.n)
        for leaf_id, members in near.items():
            assert len(members) <= cap + 1  # +1 for the leaf itself

    def test_larger_budget_gives_no_fewer_near_pairs(self):
        _, config_small, tree, neighbors = build_setup(budget=0.1, symmetrize=False)
        near_small = build_near_lists(tree, neighbors, config_small)
        near_large = build_near_lists(tree, neighbors, config_small.replace(budget=0.6))
        total_small = sum(len(v) for v in near_small.values())
        total_large = sum(len(v) for v in near_large.values())
        assert total_large >= total_small

    def test_near_members_are_leaves(self):
        _, config, tree, neighbors = build_setup(budget=0.4)
        near = build_near_lists(tree, neighbors, config)
        for members in near.values():
            for alpha in members:
                assert tree.node(alpha).is_leaf


class TestFarLists:
    @pytest.mark.parametrize("builder", [build_far_lists_paper, build_far_lists_symmetric], ids=["paper", "dual-tree"])
    def test_far_nodes_disjoint_from_owner(self, builder):
        _, config, tree, neighbors = build_setup(budget=0.3)
        near = build_near_lists(tree, neighbors, config)
        far = builder(tree, near)
        for node_id, members in far.items():
            node = tree.node(node_id)
            owned = set(node.indices.tolist())
            for alpha_id in members:
                alpha = tree.node(alpha_id)
                assert owned.isdisjoint(alpha.indices.tolist())

    def test_hss_far_lists_are_siblings(self):
        _, config, tree, neighbors = build_setup(budget=0.0)
        near = build_near_lists(tree, neighbors, config)
        for far in (build_far_lists_paper(tree, near), build_far_lists_symmetric(tree, near)):
            for node in tree.nodes:
                if node.is_root:
                    assert far[node.node_id] == []
                else:
                    sibling_id = [c.node_id for c in node.parent.children() if c.node_id != node.node_id][0]
                    assert far[node.node_id] == [sibling_id]

    def test_symmetric_builder_is_symmetric(self):
        _, config, tree, neighbors = build_setup(budget=0.3, symmetrize=True)
        near = build_near_lists(tree, neighbors, config)
        far = build_far_lists_symmetric(tree, near)
        for beta, members in far.items():
            for alpha in members:
                assert beta in far[alpha]

    @pytest.mark.parametrize("budget", [0.0, 0.2, 0.5])
    @pytest.mark.parametrize("symmetrize", [True, False])
    def test_exactly_once_coverage(self, budget, symmetrize):
        matrix, config, tree, neighbors = build_setup(budget=budget, symmetrize=symmetrize)
        lists = build_interaction_lists(tree, neighbors, config)
        coverage = coverage_matrix(tree, lists)
        assert np.all(coverage == 1), "every ordered leaf pair must be covered exactly once"


class TestInteractionListsBundle:
    def test_lists_attached_to_nodes(self):
        _, config, tree, neighbors = build_setup()
        lists = build_interaction_lists(tree, neighbors, config)
        for leaf in tree.leaves:
            assert leaf.near == lists.near[leaf.node_id]
        for node in tree.nodes:
            assert node.far == lists.far[node.node_id]

    def test_is_hss_flag(self):
        _, config, tree, neighbors = build_setup(budget=0.0)
        lists = build_interaction_lists(tree, neighbors, config)
        assert lists.is_hss()
        _, config2, tree2, neighbors2 = build_setup(budget=0.5)
        lists2 = build_interaction_lists(tree2, neighbors2, config2)
        assert not lists2.is_hss()

    def test_no_neighbor_table_degenerates_to_hss(self):
        config = GOFMMConfig(leaf_size=16, budget=0.5, distance=DistanceMetric.LEXICOGRAPHIC)
        tree = build_tree(128, config, distance=None)
        lists = build_interaction_lists(tree, None, config)
        assert lists.is_hss()
        coverage = coverage_matrix(tree, lists)
        assert np.all(coverage == 1)
