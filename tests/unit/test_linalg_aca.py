"""Unit tests for adaptive cross approximation (HODLR's low-rank builder)."""

import numpy as np
import pytest

from repro.linalg import adaptive_cross_approximation
from repro.linalg.aca import aca_from_dense


def low_rank(p, n, rank, seed=0):
    gen = np.random.default_rng(seed)
    return gen.standard_normal((p, rank)) @ gen.standard_normal((rank, n))


class TestACA:
    def test_exact_recovery_of_low_rank(self):
        a = low_rank(50, 40, rank=6, seed=0)
        result = aca_from_dense(a, max_rank=20, tolerance=1e-12)
        assert result.rank <= 10
        err = np.linalg.norm(result.reconstruct() - a) / np.linalg.norm(a)
        assert err < 1e-8

    def test_smooth_kernel_block_compresses(self):
        # 1/(1+|x-y|) interaction between two separated clusters is numerically low rank.
        x = np.linspace(0.0, 1.0, 80)
        y = np.linspace(5.0, 6.0, 60)
        block = 1.0 / (1.0 + np.abs(x[:, None] - y[None, :]))
        result = aca_from_dense(block, max_rank=30, tolerance=1e-10)
        assert result.rank < 20
        err = np.linalg.norm(result.reconstruct() - block) / np.linalg.norm(block)
        assert err < 1e-8

    def test_rank_capped(self):
        gen = np.random.default_rng(1)
        a = gen.standard_normal((30, 30))
        result = aca_from_dense(a, max_rank=5, tolerance=1e-15)
        assert result.rank == 5

    def test_entry_access_is_partial(self):
        # ACA should touch far fewer entries than the whole block.
        calls = {"rows": 0, "cols": 0}
        a = low_rank(200, 150, rank=4, seed=2)

        def row_fn(i):
            calls["rows"] += 1
            return a[i]

        def col_fn(j):
            calls["cols"] += 1
            return a[:, j]

        result = adaptive_cross_approximation(row_fn, col_fn, a.shape, max_rank=20, tolerance=1e-10)
        assert result.rank <= 8
        # At most one row + one column per cross (plus a few restarts).
        assert calls["rows"] <= result.rank + 5
        assert calls["cols"] <= result.rank + 5

    def test_zero_block(self):
        result = aca_from_dense(np.zeros((12, 9)), max_rank=5)
        assert result.rank <= 1
        assert np.allclose(result.reconstruct(), 0.0)

    def test_empty_block(self):
        result = aca_from_dense(np.zeros((0, 5)), max_rank=3)
        assert result.rank == 0
        assert result.reconstruct().shape == (0, 5)

    def test_sampled_indices_are_unique(self):
        a = low_rank(40, 35, rank=5, seed=3)
        result = aca_from_dense(a, max_rank=10, tolerance=1e-12)
        assert len(np.unique(result.rows_sampled)) == len(result.rows_sampled)
        assert len(np.unique(result.cols_sampled)) == len(result.cols_sampled)

    def test_tolerance_truncates_early(self):
        a = low_rank(60, 60, rank=30, seed=4)
        loose = aca_from_dense(a, max_rank=30, tolerance=1e-1)
        tight = aca_from_dense(a, max_rank=30, tolerance=1e-10)
        assert loose.rank <= tight.rank
