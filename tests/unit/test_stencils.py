"""Unit tests for the finite-difference operators and their SPD test matrices."""

import numpy as np
import pytest

from repro.matrices.stencils import (
    advection_diffusion_2d,
    advection_diffusion_matrix,
    grid_coordinates_2d,
    grid_coordinates_3d,
    helmholtz_2d,
    inverse_squared_laplacian_3d,
    laplacian_1d,
    laplacian_2d,
    laplacian_3d,
    regularized_inverse_helmholtz_squared_2d,
    regularized_inverse_squared_laplacian_2d,
    variable_coefficient_field,
)


class TestSparseOperators:
    def test_laplacian_1d_structure(self):
        lap = laplacian_1d(5).toarray()
        h2 = (1.0 / 6.0) ** 2
        assert lap[0, 0] == pytest.approx(2.0 / h2)
        assert lap[0, 1] == pytest.approx(-1.0 / h2)
        assert np.allclose(lap, lap.T)

    def test_laplacian_2d_spd(self):
        lap = laplacian_2d(6).toarray()
        assert np.allclose(lap, lap.T)
        assert np.linalg.eigvalsh(lap).min() > 0.0

    def test_laplacian_3d_shape(self):
        lap = laplacian_3d(4)
        assert lap.shape == (64, 64)
        assert np.allclose(lap.toarray(), lap.toarray().T)

    def test_laplacian_row_sums_interior(self):
        # Interior rows of the (unscaled) 5-point stencil sum to zero.
        n = 8
        lap = (laplacian_2d(n) * (1.0 / (n + 1) ** 2)).toarray()
        interior = n * (n // 2) + n // 2  # a point away from the boundary
        assert abs(lap[interior].sum()) < 1e-10

    def test_helmholtz_shifts_spectrum_down(self):
        n = 8
        lap_min = np.linalg.eigvalsh(laplacian_2d(n).toarray()).min()
        helm_min = np.linalg.eigvalsh(helmholtz_2d(n).toarray()).min()
        assert helm_min < lap_min

    def test_advection_diffusion_nonsymmetric(self):
        op = advection_diffusion_2d(8, advection_strength=10.0, seed=0).toarray()
        assert not np.allclose(op, op.T)

    def test_advection_diffusion_diagonal_positive(self):
        op = advection_diffusion_2d(8, seed=1)
        assert np.all(op.diagonal() > 0.0)


class TestCoefficientField:
    def test_positive_and_contrast(self):
        field = variable_coefficient_field(16, contrast=100.0, seed=0)
        assert np.all(field > 0.0)
        assert field.max() / field.min() <= 100.0 * (1 + 1e-9)

    def test_deterministic(self):
        a = variable_coefficient_field(10, 50.0, seed=3)
        b = variable_coefficient_field(10, 50.0, seed=3)
        assert np.allclose(a, b)

    def test_3d_size(self):
        field = variable_coefficient_field(5, 10.0, seed=1, dim=3)
        assert field.shape == (125,)


class TestGridCoordinates:
    def test_2d_in_unit_square(self):
        coords = grid_coordinates_2d(7)
        assert coords.shape == (49, 2)
        assert coords.min() > 0.0 and coords.max() < 1.0

    def test_3d_count(self):
        assert grid_coordinates_3d(4).shape == (64, 3)


@pytest.mark.parametrize(
    "builder",
    [
        lambda n: regularized_inverse_squared_laplacian_2d(n),
        lambda n: regularized_inverse_helmholtz_squared_2d(n),
        lambda n: advection_diffusion_matrix(n, invert=True),
        lambda n: advection_diffusion_matrix(n, invert=False),
        lambda n: inverse_squared_laplacian_3d(n),
    ],
    ids=["K02", "K03", "K12-inv", "K14-fwd", "K18"],
)
class TestDenseTestMatrices:
    def test_spd_at_small_size(self, builder):
        m = builder(80)
        a = m.array
        assert a.shape == (80, 80)
        assert np.allclose(a, a.T, atol=1e-10)
        assert np.linalg.eigvalsh(a).min() > 0.0

    def test_requested_size_honored(self, builder):
        assert builder(50).n == 50

    def test_coordinates_match_size(self, builder):
        m = builder(60)
        assert m.coordinates is not None
        assert m.coordinates.shape[0] == 60

    def test_normalized_scale(self, builder):
        # Generators normalize to max |entry| == 1 so errors are comparable across matrices.
        assert np.abs(builder(40).array).max() == pytest.approx(1.0)
