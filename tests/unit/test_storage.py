"""Unit tests for the out-of-core storage subsystem (repro.storage).

Covers the three pillars: the format-v2 operator store (save / mmap
cold-start / trust-boundary validation), the panel source/sink streaming
layer, and the disk-backed spill arena — plus the serving integration
(``MatvecServer.register(store=...)``).
"""

import json
import os

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.api import CompressedOperator, Session
from repro.errors import ArtifactMismatchError, ConfigurationError, StorageError
from repro.storage import (
    ArrayPanelSource,
    MmapPanelSink,
    MmapPanelSource,
    OperatorStore,
    SpillArena,
    StoredBlockProvider,
    as_panel_sink,
    as_panel_source,
    is_disk_backed,
    read_array_dir,
    write_array_dir,
)

from ..conftest import make_gaussian_kernel_matrix

#: Fine tree with cached blocks: the store must carry skeletons,
#: coefficients, and both block families.
CONFIG = dict(
    leaf_size=16, max_rank=8, adaptive_rank=False, budget=0.2,
    neighbors=8, num_neighbor_trees=3, seed=0,
)


@pytest.fixture(scope="module")
def matrix():
    return make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.5, seed=0)


@pytest.fixture(scope="module")
def operator(matrix):
    return Session(matrix, GOFMMConfig(**CONFIG)).compress()


@pytest.fixture(scope="module")
def store_path(operator, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "operator.store"
    operator.save(path)
    return path


@pytest.fixture(scope="module")
def weights(matrix):
    return np.random.default_rng(3).standard_normal((matrix.n, 4))


@pytest.fixture(scope="module")
def reference(operator, weights):
    return operator.apply(weights, engine="reference")


class TestArrayDir:
    def test_round_trip_preserves_arrays_and_manifest(self, tmp_path):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([1, 2, 3], dtype=np.intp),
        }
        path = tmp_path / "dir.store"
        write_array_dir(path, {"kind": "test", "schema_version": 2}, arrays)
        manifest, loaded = read_array_dir(path, mmap=True)
        assert manifest["kind"] == "test"
        for name, arr in arrays.items():
            assert np.array_equal(loaded[name], arr)
            assert is_disk_backed(loaded[name])

    def test_publish_is_atomic_over_existing_dir(self, tmp_path):
        path = tmp_path / "dir.store"
        write_array_dir(path, {"kind": "test"}, {"a": np.zeros(3)})
        write_array_dir(path, {"kind": "test"}, {"a": np.ones(5)})
        _, loaded = read_array_dir(path)
        assert np.array_equal(loaded["a"], np.ones(5))
        assert not any(name.startswith("dir.store.tmp-") for name in os.listdir(tmp_path))

    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "empty.store").mkdir()
        with pytest.raises(ArtifactMismatchError):
            read_array_dir(tmp_path / "empty.store")

    def test_truncated_array_raises(self, tmp_path):
        path = tmp_path / "dir.store"
        write_array_dir(path, {"kind": "test"}, {"a": np.arange(1000.0)})
        victim = path / "a.npy"
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        with pytest.raises(ArtifactMismatchError):
            read_array_dir(path)

    def test_manifest_shape_mismatch_raises(self, tmp_path):
        path = tmp_path / "dir.store"
        write_array_dir(path, {"kind": "test"}, {"a": np.arange(10.0)})
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["arrays"]["a"]["shape"] = [99]
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactMismatchError):
            read_array_dir(path)


class TestOperatorStore:
    def test_mmap_open_is_bit_identical_to_reference(self, store_path, weights, reference):
        reopened = CompressedOperator.open(store_path, resident="mmap")
        assert reopened.default_engine() == "streamed"
        assert np.array_equal(reopened.apply(weights), reference)

    def test_ram_open_is_bit_identical(self, store_path, weights, reference):
        reopened = CompressedOperator.open(store_path, resident="ram")
        assert np.array_equal(reopened.apply(weights, engine="reference"), reference)

    def test_mmap_open_reports_bytes_on_disk(self, store_path):
        reopened = CompressedOperator.open(store_path, resident="mmap")
        report = reopened.report()
        assert report["bytes_on_disk"] > 0
        memory = reopened.compressed.memory_report()
        assert set(memory) == {"bytes_resident", "bytes_on_disk"}
        assert memory["bytes_on_disk"] == report["bytes_on_disk"]

    def test_store_metadata(self, store_path, operator):
        store = OperatorStore(store_path)
        assert store.n == operator.n
        assert store.bytes_on_disk > 0
        assert set(store.fingerprints) == {
            "partition", "neighbors", "interactions", "skeletons", "blocks", "plan"
        }
        assert store.config().leaf_size == CONFIG["leaf_size"]

    def test_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "notastore"
        write_array_dir(path, {"kind": "something-else", "schema_version": 2}, {"a": np.zeros(1)})
        with pytest.raises(ArtifactMismatchError):
            OperatorStore(path)

    def test_truncated_store_array_raises(self, store_path, tmp_path, operator):
        path = tmp_path / "corrupt.store"
        operator.save(path)
        victim = path / "coeff_data.npy"
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        with pytest.raises(ArtifactMismatchError):
            OperatorStore(path).open()

    def test_config_overrides_apply(self, store_path):
        reopened = CompressedOperator.open(
            store_path, resident="mmap", streaming_chunk_bytes=1 << 20
        )
        assert reopened.config.streaming_chunk_bytes == 1 << 20


class TestStoredBlockProvider:
    def _provider(self):
        blocks = {(0, 1): np.arange(6.0).reshape(2, 3), (2, 3): np.ones((1, 4))}
        keys = np.array(sorted(blocks), dtype=np.intp)
        flat, indptr, shapes = [], [0], []
        for key in sorted(blocks):
            block = blocks[key]
            flat.append(block.ravel())
            shapes.append(block.shape)
            indptr.append(indptr[-1] + block.size)
        return blocks, StoredBlockProvider(
            keys=keys,
            indptr=np.array(indptr, dtype=np.intp),
            shapes=np.array(shapes, dtype=np.intp),
            data=np.concatenate(flat),
        )

    def test_get_returns_stored_blocks(self):
        blocks, provider = self._provider()
        for key, block in blocks.items():
            assert np.array_equal(provider.get(key), block)
        assert provider.get((9, 9)) is None

    def test_store_is_rejected(self):
        _, provider = self._provider()
        with pytest.raises(StorageError):
            provider.store((4, 5), np.zeros((2, 2)))

    def test_inconsistent_indptr_raises(self):
        with pytest.raises(ArtifactMismatchError):
            StoredBlockProvider(
                keys=np.array([[0, 1]], dtype=np.intp),
                indptr=np.array([0, 7], dtype=np.intp),
                shapes=np.array([[2, 3]], dtype=np.intp),
                data=np.zeros(6),
            )


class TestPanels:
    def test_array_source_reads_views(self):
        data = np.arange(24.0).reshape(6, 4)
        source = ArrayPanelSource(data)
        assert source.shape == (6, 4)
        assert np.array_equal(source.read(1, 4, 0, 2), data[1:4, 0:2])

    def test_mmap_source_and_sink_round_trip(self, tmp_path):
        data = np.random.default_rng(0).standard_normal((10, 5))
        src_path = tmp_path / "w.npy"
        np.save(src_path, data)
        source = MmapPanelSource(src_path)
        assert np.array_equal(source.read(0, 10, 0, 5), data)

        sink_path = tmp_path / "out.npy"
        sink = MmapPanelSink(sink_path, shape=(10, 5))
        sink.write(0, 0, data[:, :3])
        sink.write(0, 3, data[:, 3:])
        sink.close()
        assert np.array_equal(np.load(sink_path), data)

    def test_as_panel_source_dispatch(self, tmp_path):
        arr = np.zeros((3, 2))
        assert isinstance(as_panel_source(arr), ArrayPanelSource)
        path = tmp_path / "x.npy"
        np.save(path, arr)
        assert isinstance(as_panel_source(str(path)), MmapPanelSource)
        source = ArrayPanelSource(arr)
        assert as_panel_source(source) is source
        with pytest.raises(StorageError):
            as_panel_source(42)

    def test_as_panel_sink_validates_shape(self):
        out = np.zeros((4, 2))
        with pytest.raises(StorageError):
            as_panel_sink(out, (5, 2))


class TestSpillArena:
    def test_allocate_returns_disk_backed_buffer(self, tmp_path):
        with SpillArena(budget_bytes=1 << 20, directory=tmp_path) as arena:
            buf = arena.allocate((16, 8))
            assert buf.shape == (16, 8)
            assert is_disk_backed(buf)
            buf[:] = 3.0
            assert float(buf.sum()) == 16 * 8 * 3.0

    def test_budget_eviction_prefers_unpinned_lru(self, tmp_path):
        nbytes = 16 * 8 * 8
        with SpillArena(budget_bytes=2 * nbytes, directory=tmp_path) as arena:
            a = arena.allocate((16, 8))
            b = arena.allocate((16, 8))
            c = arena.allocate((16, 8))
            arena.pin(a)
            arena.pin(b)
            arena.unpin(a)
            arena.pin(c)  # budget forces an eviction; a is the unpinned LRU
            assert arena.resident_bytes <= 2 * nbytes
            arena.unpin(b)
            arena.unpin(c)

    def test_release_frees_disk(self, tmp_path):
        arena = SpillArena(budget_bytes=1 << 20, directory=tmp_path)
        buf = arena.allocate((8, 8))
        assert arena.bytes_on_disk == 8 * 8 * 8
        arena.release(buf)
        assert arena.bytes_on_disk == 0
        arena.close()

    def test_foreign_buffer_rejected(self, tmp_path):
        with SpillArena(budget_bytes=1 << 20, directory=tmp_path) as arena:
            with pytest.raises(StorageError):
                arena.pin(np.zeros((2, 2)))

    def test_close_removes_backing_files_and_is_idempotent(self, tmp_path):
        arena = SpillArena(budget_bytes=1 << 20, directory=tmp_path)
        arena.allocate((8, 8))
        backing = arena.path
        assert os.path.isdir(backing)
        arena.close()
        arena.close()
        assert not os.path.exists(backing)
        with pytest.raises(StorageError):
            arena.allocate((2, 2))


class TestServingColdStart:
    def test_register_from_store_serves_bit_identically(self, store_path, operator, weights):
        from repro.serving import BatchPolicy, MatvecServer

        server = MatvecServer()
        # bit-identity holds per matched RHS width (GEMM accumulation differs
        # across widths), so serve width-1 batches and compare to a width-1
        # reference traversal
        entry = server.register("ooc", store=store_path, policy=BatchPolicy(max_batch=1))
        with server:
            got = server.matvec("ooc", weights[:, 0])
        assert np.array_equal(got, operator.apply(weights[:, 0], engine="reference"))
        assert entry.source is not None and entry.source["store"] == store_path

    def test_store_entry_reports_memory_and_reloads(self, store_path, operator):
        from repro.serving import MatvecServer

        server = MatvecServer()
        server.register("ooc", store=store_path)
        stats = server.stats()["ooc"]
        assert stats["bytes_on_disk"] > 0
        assert stats["hot_reload"] is True
        assert server.reload("ooc") is False  # unchanged manifest
        operator.save(store_path)  # republish bumps the manifest stamp
        assert server.reload("ooc") is True

    def test_store_excludes_other_sources(self, store_path, matrix):
        from repro.errors import ServingError
        from repro.serving import MatvecServer

        with pytest.raises(ServingError):
            MatvecServer().register("x", store=store_path, matrix=matrix)


class TestStorageFaultTolerance:
    """Hardened reads and the typed spill-capacity failure path."""

    def test_transient_read_error_is_retried_and_recovered(self, store_path):
        from repro.faults import FaultPlan, nth_call
        from repro.obs import counters

        clean_manifest, clean_arrays = read_array_dir(store_path, mmap=False)
        plan = FaultPlan()
        plan.inject("storage.read", trigger=nth_call(1))  # default: transient EIO
        recovered_before = counters.get("faults_recovered")
        with plan.armed():
            manifest, arrays = read_array_dir(store_path, mmap=False)
        assert manifest == clean_manifest
        for key in clean_arrays:
            assert np.array_equal(arrays[key], clean_arrays[key])
        assert plan.injected == 1
        assert counters.get("faults_recovered") == recovered_before + 1

    def test_persistent_read_error_exhausts_typed(self, store_path):
        from repro.errors import StorageRetryExhaustedError
        from repro.faults import FaultPlan, always

        plan = FaultPlan()
        plan.inject("storage.read", trigger=always(), times=None)
        with plan.armed():
            with pytest.raises(StorageRetryExhaustedError) as info:
                read_array_dir(store_path, mmap=False, retries=1)
        assert info.value.attempts == 2
        assert info.value.path  # names the read that kept failing

    def test_missing_file_is_not_retried(self, tmp_path):
        # FileNotFoundError means a wrong/corrupt artifact, not a flaky
        # device: it must fail fast as ArtifactMismatchError, no backoff.
        with pytest.raises(ArtifactMismatchError):
            read_array_dir(tmp_path / "nope", retries=5)

    def test_operator_store_opens_through_transient_faults(self, store_path, weights, reference):
        from repro.faults import FaultPlan, nth_call

        plan = FaultPlan()
        plan.inject("storage.read", trigger=nth_call(1))
        with plan.armed():
            op = CompressedOperator.open(store_path, resident="mmap")
        assert np.array_equal(op @ weights, reference)
        assert plan.injected == 1

    def test_enospc_raises_spill_capacity_error(self, tmp_path):
        from repro.errors import SpillCapacityError
        from repro.faults import FaultPlan

        plan = FaultPlan()
        plan.inject("spill.write")  # default error: ENOSPC
        with SpillArena(budget_bytes=1 << 20, directory=tmp_path) as arena:
            with plan.armed():
                with pytest.raises(SpillCapacityError):
                    arena.allocate((16, 8))
                buf = arena.allocate((16, 8))  # budget spent: next allocation works
            assert buf.shape == (16, 8)

    def test_streamed_matvec_degrades_to_heap_on_enospc(self, matrix):
        from repro.faults import FaultPlan, always
        from repro.obs import counters

        op = Session(matrix, GOFMMConfig(**{
            **CONFIG, "cache_near_blocks": False, "cache_far_blocks": False,
            "streaming_chunk_bytes": 2048,
        })).compress()
        plan = op.compressed.streaming_plan()
        assert plan.spills
        w = np.random.default_rng(21).standard_normal((matrix.n, 3))
        expected = op.compressed.matvec(w, engine="reference")

        fault = FaultPlan()
        fault.inject("spill.write", trigger=always(), times=None)
        degraded_before = counters.get("faults_degraded")
        with fault.armed():
            got = op.compressed.matvec(w, engine="streamed")
        assert np.array_equal(got, expected)  # heap fallback is bit-identical
        assert not plan.spills  # degraded for the plan's lifetime
        assert counters.get("faults_degraded") == degraded_before + 1
        # and the degraded plan keeps serving without the arena
        assert np.array_equal(op.compressed.matvec(w, engine="streamed"), expected)

    def test_spill_degrade_disabled_surfaces_typed_error(self, matrix):
        from repro.errors import SpillCapacityError
        from repro.faults import FaultPlan, always

        op = Session(matrix, GOFMMConfig(**{
            **CONFIG, "cache_near_blocks": False, "cache_far_blocks": False,
            "streaming_chunk_bytes": 2048, "spill_degrade_to_heap": False,
        })).compress()
        assert op.compressed.streaming_plan().spills
        fault = FaultPlan()
        fault.inject("spill.write", trigger=always(), times=None)
        w = np.random.default_rng(22).standard_normal((matrix.n, 2))
        with fault.armed():
            with pytest.raises(SpillCapacityError):
                op.compressed.matvec(w, engine="streamed")
