"""Unit tests for Morton IDs (tree-path codes)."""

import pytest

from repro.core.morton import MortonID, ROOT_MORTON


class TestConstruction:
    def test_root(self):
        assert ROOT_MORTON.level == 0
        assert ROOT_MORTON.bits == 0
        assert ROOT_MORTON.path() == ""

    def test_children(self):
        left = ROOT_MORTON.left_child()
        right = ROOT_MORTON.right_child()
        assert (left.level, left.bits) == (1, 0)
        assert (right.level, right.bits) == (1, 1)

    def test_path_string(self):
        node = ROOT_MORTON.right_child().left_child().right_child()
        assert node.path() == "101"

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            MortonID(level=2, bits=4)
        with pytest.raises(ValueError):
            MortonID(level=-1, bits=0)


class TestNavigation:
    def test_parent_inverts_child(self):
        node = ROOT_MORTON.left_child().right_child()
        assert node.parent() == ROOT_MORTON.left_child()
        assert node.parent().parent() == ROOT_MORTON

    def test_root_has_no_parent_or_sibling(self):
        with pytest.raises(ValueError):
            ROOT_MORTON.parent()
        with pytest.raises(ValueError):
            ROOT_MORTON.sibling()

    def test_sibling(self):
        left = ROOT_MORTON.left_child()
        assert left.sibling() == ROOT_MORTON.right_child()
        assert left.sibling().sibling() == left

    def test_ancestor_at_level(self):
        node = ROOT_MORTON.right_child().right_child().left_child()
        assert node.ancestor_at_level(0) == ROOT_MORTON
        assert node.ancestor_at_level(2) == ROOT_MORTON.right_child().right_child()
        assert node.ancestor_at_level(3) == node

    def test_ancestor_at_deeper_level_rejected(self):
        with pytest.raises(ValueError):
            ROOT_MORTON.left_child().ancestor_at_level(5)


class TestAncestry:
    def test_root_is_ancestor_of_everything(self):
        node = ROOT_MORTON.left_child().right_child().right_child()
        assert ROOT_MORTON.is_ancestor_of(node)
        assert node.is_descendant_of(ROOT_MORTON)

    def test_self_ancestry(self):
        node = ROOT_MORTON.right_child().left_child()
        assert node.is_ancestor_of(node)

    def test_non_ancestor(self):
        left = ROOT_MORTON.left_child()
        right = ROOT_MORTON.right_child()
        assert not left.is_ancestor_of(right)
        assert not right.is_ancestor_of(left.left_child())

    def test_deeper_node_never_ancestor_of_shallower(self):
        deep = ROOT_MORTON.left_child().left_child().left_child()
        assert not deep.is_ancestor_of(ROOT_MORTON.left_child())

    def test_ancestry_distinguishes_paths(self):
        a = ROOT_MORTON.left_child().right_child()   # "01"
        b = ROOT_MORTON.right_child().left_child()   # "10"
        descendant_of_a = a.left_child()
        assert a.is_ancestor_of(descendant_of_a)
        assert not b.is_ancestor_of(descendant_of_a)


class TestOrderingAndHashing:
    def test_hashable_and_equal(self):
        a = ROOT_MORTON.left_child().right_child()
        b = MortonID(level=2, bits=1)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_total_order_exists(self):
        nodes = [ROOT_MORTON, ROOT_MORTON.left_child(), ROOT_MORTON.right_child()]
        assert sorted(nodes)[0] == ROOT_MORTON
