"""Unit tests for the sharded serving cluster (:mod:`repro.serving.cluster`).

The load-bearing guarantees:

* **placement is deterministic**: the consistent hash ring maps operator
  names to shards as a pure function of the shard ids — identical across
  router instances and processes,
* **routing is numerically invisible** (pinned): a response through the
  router — any lane, any replica, under failover — is bit-identical to
  unbatched single-server serving at the same policy,
* **lane isolation**: with replicated operators each latency lane is
  pinned to its own shard, so interactive traffic never shares a queue
  with a throughput backlog,
* **shard death is survived**: restart-on-death rebuilds the server and
  re-registers its operators; route-around re-places them on ring
  successors; either way a request submitted through the dead shard is
  retried once and succeeds,
* **metrics roll up**: cluster stats aggregate per-shard ServingMetrics
  into the stable schema.
"""

import numpy as np
import pytest

from repro.api import Session
from repro.errors import ServingConfigError, ServingError, ShardUnavailableError
from repro.serving import (
    INTERACTIVE,
    METRICS_SCHEMA_VERSION,
    THROUGHPUT,
    BatchPolicy,
    MatvecServer,
    ShardRouter,
)
from repro.serving.cluster import (
    DOWN,
    ROUTE_AROUND,
    UP,
    HashRing,
    HealthPolicy,
)

from ..conftest import make_gaussian_kernel_matrix
from .test_serving import make_config

N = 224


@pytest.fixture(scope="module")
def matrix():
    return make_gaussian_kernel_matrix(n=N, d=3, bandwidth=1.4, seed=0)


@pytest.fixture(scope="module")
def operator(matrix):
    return Session(matrix, make_config()).compress()


def make_policy(**overrides) -> BatchPolicy:
    return BatchPolicy(**{"max_batch": 8, "max_wait_ms": 2.0, "max_queue": 512, **overrides})


class TestPlacement:
    def test_ring_is_deterministic_across_instances(self):
        ids = [f"shard-{i}" for i in range(5)]
        ring_a, ring_b = HashRing(ids), HashRing(ids)
        for name in ("kernel", "graph", "precision", "op-7"):
            assert ring_a.place(name, 2, ids) == ring_b.place(name, 2, ids)

    def test_routers_place_identically(self, operator):
        a = ShardRouter(num_shards=4, policy=make_policy())
        b = ShardRouter(num_shards=4, policy=make_policy())
        for name in ("kernel", "graph", "precision"):
            assert a.register(name, operator, replicas=2) == b.register(name, operator, replicas=2)

    def test_replicas_are_distinct_shards(self):
        ids = [f"shard-{i}" for i in range(4)]
        ring = HashRing(ids)
        placement = ring.place("kernel", 3, ids)
        assert len(placement) == 3
        assert len(set(placement)) == 3

    def test_degraded_placement_when_too_few_shards(self):
        ids = ["shard-0", "shard-1"]
        ring = HashRing(ids)
        assert len(ring.place("kernel", 5, ids)) == 2  # degraded, still serving
        assert ring.place("kernel", 2, []) == ()

    def test_losing_a_shard_only_moves_its_operators(self):
        ids = [f"shard-{i}" for i in range(6)]
        ring = HashRing(ids)
        names = [f"op-{i}" for i in range(40)]
        before = {n: ring.place(n, 1, ids) for n in names}
        survivors = [i for i in ids if i != "shard-3"]
        for name in names:
            after = ring.place(name, 1, survivors)
            if before[name][0] != "shard-3":
                assert after == before[name]  # untouched operators stay put
            else:
                assert after[0] in survivors

    def test_registration_validation(self, operator):
        router = ShardRouter(num_shards=2, policy=make_policy())
        with pytest.raises(ServingConfigError):
            ShardRouter(num_shards=0)
        with pytest.raises(ServingConfigError):
            router.register("kernel", operator, replicas=0)
        router.register("kernel", operator)
        with pytest.raises(ServingError, match="already registered"):
            router.register("kernel", operator)
        with pytest.raises(ServingError, match="unknown operator"):
            router.unregister("nope")


class TestRoutedBitIdentity:
    """Pinned: routed responses == unbatched single-server responses."""

    def test_routed_equals_single_server_unbatched(self, matrix, operator):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((16, N))
        policy = make_policy()

        reference_server = MatvecServer(policy=policy)
        reference_server.register("kernel", operator)
        with reference_server:
            # unbatched: each request served alone at the canonical width
            reference = [reference_server.matvec("kernel", v, timeout=30) for v in vectors]

        router = ShardRouter(num_shards=3, policy=policy)
        router.register("kernel", operator, replicas=2)
        with router:
            futures = [
                router.submit("kernel", v,
                              lane=INTERACTIVE if i % 2 else THROUGHPUT)
                for i, v in enumerate(vectors)
            ]
            routed = [f.result(timeout=30) for f in futures]

        for got, expected in zip(routed, reference):
            assert np.array_equal(got, expected)

    def test_routed_solves_meet_tolerance(self, matrix, operator):
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal(N)
        router = ShardRouter(num_shards=2, policy=make_policy())
        router.register("kernel", operator)
        with router:
            result = router.solve("kernel", rhs, shift=1.0, tolerance=1e-9, timeout=60)
        assert result.converged
        residual = np.asarray(operator.apply(result.solution)) + result.solution - rhs
        assert np.linalg.norm(residual) <= 1e-8 * np.linalg.norm(rhs)


class TestLaneIsolation:
    def test_lanes_are_pinned_to_distinct_replicas(self, matrix, operator):
        rng = np.random.default_rng(2)
        router = ShardRouter(num_shards=3, policy=make_policy())
        placement = router.register("kernel", operator, replicas=2)
        assert len(placement) == 2
        with router:
            for _ in range(4):
                router.matvec("kernel", rng.standard_normal(N), timeout=30)
                router.matvec("kernel", rng.standard_normal(N),
                              lane=INTERACTIVE, timeout=30)
            per_shard = {
                sid: router.shard(sid).server.entry("kernel").metrics.to_dict()
                for sid in placement
            }
        # each lane's traffic landed wholly on its own shard
        lanes_seen = {sid: set(stats["lanes"]) for sid, stats in per_shard.items()}
        assert sorted(lanes_seen.values(), key=sorted) == [{INTERACTIVE}, {THROUGHPUT}]
        for stats in per_shard.values():
            assert stats["responses"] == 4

    def test_queue_depth_balancing_when_isolation_off(self, matrix, operator):
        router = ShardRouter(num_shards=2, policy=make_policy(), lane_isolation=False)
        router.register("kernel", operator, replicas=2)
        with router:
            got = router.matvec("kernel", np.zeros(N), timeout=30)
        assert got.shape == (N,)


class TestHealth:
    def test_restart_on_death_recovers_and_reregisters(self, matrix, operator):
        rng = np.random.default_rng(3)
        w = rng.standard_normal(N)
        policy = make_policy()
        router = ShardRouter(num_shards=2, policy=policy)
        placement = router.register("kernel", operator, replicas=2)

        reference_server = MatvecServer(policy=policy)
        reference_server.register("kernel", operator)
        with reference_server:
            expected = reference_server.matvec("kernel", w, timeout=30)

        with router:
            # kill the shard the throughput lane is pinned to, then route through it
            lanes = sorted(policy.lanes)
            victim_id = placement[lanes.index(THROUGHPUT) % len(placement)]
            victim = router.shard(victim_id)
            victim.kill()
            assert not victim.healthy
            got = router.matvec("kernel", w, timeout=30)  # failover path
            assert np.array_equal(got, expected)          # still bit-identical
            assert victim.restarts == 1
            assert victim.healthy
            assert "kernel" in victim.server

    def test_check_health_restarts_proactively(self, matrix, operator):
        router = ShardRouter(num_shards=2, policy=make_policy())
        placement = router.register("kernel", operator, replicas=1)
        with router:
            router.shard(placement[0]).kill()
            report = router.check_health()
            assert report[placement[0]] == {"healthy": True, "action": "restarted"}
            other = [sid for sid in router.shards() if sid != placement[0]][0]
            assert report[other] == {"healthy": True, "action": None}
            got = router.matvec("kernel", np.zeros(N), timeout=30)
        assert got.shape == (N,)

    def test_route_around_moves_operators_off_the_dead_shard(self, matrix, operator):
        router = ShardRouter(num_shards=3, policy=make_policy(),
                             health=HealthPolicy(mode=ROUTE_AROUND))
        placement = router.register("kernel", operator, replicas=1)
        with router:
            router.shard(placement[0]).kill()
            got = router.matvec("kernel", np.zeros(N), timeout=30)
            assert got.shape == (N,)
            new_placement = router.placement()["kernel"]
            assert new_placement != placement
            assert router.shard(placement[0]).state == DOWN
            assert all(router.shard(sid).state == UP for sid in new_placement)

    def test_max_restarts_demotes_to_route_around(self, matrix, operator):
        router = ShardRouter(num_shards=2, policy=make_policy(),
                             health=HealthPolicy(max_restarts=0))
        placement = router.register("kernel", operator, replicas=1)
        with router:
            router.shard(placement[0]).kill()
            got = router.matvec("kernel", np.zeros(N), timeout=30)
            assert got.shape == (N,)
            assert router.shard(placement[0]).state == DOWN  # demoted, not restarted
            assert router.shard(placement[0]).restarts == 0

    def test_no_shard_left_raises_typed_error(self, matrix, operator):
        router = ShardRouter(num_shards=1, policy=make_policy(),
                             health=HealthPolicy(mode=ROUTE_AROUND))
        placement = router.register("kernel", operator)
        with router:
            router.shard(placement[0]).kill()
            with pytest.raises(ShardUnavailableError):
                router.matvec("kernel", np.zeros(N), timeout=30)

    def test_health_policy_validation(self):
        with pytest.raises(ServingConfigError):
            HealthPolicy(mode="reboot")
        with pytest.raises(ServingConfigError):
            HealthPolicy(max_restarts=-1)


class TestClusterStats:
    def test_rollup_aggregates_across_replicas(self, matrix, operator):
        rng = np.random.default_rng(4)
        router = ShardRouter(num_shards=3, policy=make_policy())
        router.register("kernel", operator, replicas=2)
        with router:
            for _ in range(3):
                router.matvec("kernel", rng.standard_normal(N), timeout=30)
                router.matvec("kernel", rng.standard_normal(N),
                              lane=INTERACTIVE, timeout=30)
            stats = router.stats()
        cluster = stats["cluster"]
        assert cluster["schema_version"] == METRICS_SCHEMA_VERSION
        assert cluster["instances"] == 2  # one metrics instance per replica
        assert cluster["responses"] == 6
        assert cluster["lanes"][THROUGHPUT]["responses"] == 3
        assert cluster["lanes"][INTERACTIVE]["responses"] == 3
        op = stats["operators"]["kernel"]
        assert op["responses"] == 6
        assert op["replicas"] == 2
        assert len(op["placement"]) == 2
        assert stats["healthy_shards"] == 3
        assert set(stats["shards"]) == set(router.shards())

    def test_swap_bumps_every_replica(self, matrix, operator):
        router = ShardRouter(num_shards=2, policy=make_policy())
        placement = router.register("kernel", operator, replicas=2)
        with router:
            router.swap("kernel", operator)
            for sid in placement:
                assert router.shard(sid).server.entry("kernel").version == 2

    def test_unregister_removes_everywhere(self, matrix, operator):
        router = ShardRouter(num_shards=2, policy=make_policy())
        placement = router.register("kernel", operator, replicas=2)
        with router:
            router.unregister("kernel")
            assert "kernel" not in router
            for sid in placement:
                assert "kernel" not in router.shard(sid).server
            with pytest.raises(ServingError, match="unknown operator"):
                router.matvec("kernel", np.zeros(N))


class _DeadServer:
    """A server replacement that never comes up — simulates a bad host."""

    serving = False

    def start(self):
        pass

    def stop(self, drain=True):
        pass


class TestCircuitBreaker:
    """Breaker-gated half-open probing of shards demoted by a restart storm."""

    def test_restart_storm_opens_breaker_then_probe_recovers(self, matrix, operator):
        from repro.obs import counters

        router = ShardRouter(num_shards=2, policy=make_policy(),
                             health=HealthPolicy(max_restarts=1, breaker_cooldown_s=30.0))
        fake_now = [1000.0]
        router._clock = lambda: fake_now[0]
        placement = router.register("kernel", operator, replicas=1)
        with router:
            victim = router.shard(placement[0])
            victim.kill()
            assert router.check_health()[victim.shard_id]["action"] == "restarted"
            # second crash burns the restart budget: demote and open the breaker
            victim.kill()
            degraded_before = counters.get("faults_degraded")
            report = router.check_health()[victim.shard_id]
            assert report == {"healthy": False, "action": "routed-around"}
            assert victim.state == DOWN
            assert victim.breaker_open_until == pytest.approx(1030.0)
            assert counters.get("faults_degraded") == degraded_before + 1
            # while the breaker is open the shard is left alone — no rebuild burn
            restarts = victim.restarts
            assert router.check_health()[victim.shard_id]["action"] is None
            assert victim.restarts == restarts
            # and traffic flows around it in the meantime
            assert router.matvec("kernel", np.zeros(N), timeout=30).shape == (N,)
            # cooldown elapses: half-open probe rebuilds, closes the breaker,
            # and moves the operator back onto its ring-preferred shard
            fake_now[0] += 30.0
            recovered_before = counters.get("faults_recovered")
            report = router.check_health()[victim.shard_id]
            assert report == {"healthy": True, "action": "probe-recovered"}
            assert victim.state == UP
            assert victim.breaker_open_until == 0.0
            assert router.placement()["kernel"] == placement
            assert counters.get("faults_recovered") == recovered_before + 1
            assert router.matvec("kernel", np.zeros(N), timeout=30).shape == (N,)

    def test_probe_failure_reopens_breaker(self, matrix, operator):
        router = ShardRouter(num_shards=2, policy=make_policy(),
                             health=HealthPolicy(max_restarts=0, breaker_cooldown_s=10.0))
        fake_now = [50.0]
        router._clock = lambda: fake_now[0]
        placement = router.register("kernel", operator, replicas=1)
        with router:
            victim = router.shard(placement[0])
            victim.kill()
            assert router.check_health()[victim.shard_id]["action"] == "routed-around"
            # the probe brings up a server that is still dead: breaker re-opens
            real_factory = victim._new_server
            victim._new_server = lambda: _DeadServer()
            fake_now[0] += 10.0
            report = router.check_health()[victim.shard_id]
            assert report == {"healthy": False, "action": "probe-failed"}
            assert victim.state == DOWN
            assert victim.breaker_open_until == pytest.approx(70.0)
            # a later probe against a healthy host recovers the shard
            victim._new_server = real_factory
            fake_now[0] += 10.0
            assert router.check_health()[victim.shard_id]["action"] == "probe-recovered"
            assert victim.healthy

    def test_route_around_mode_is_never_probed(self, matrix, operator):
        router = ShardRouter(num_shards=3, policy=make_policy(),
                             health=HealthPolicy(mode=ROUTE_AROUND))
        fake_now = [0.0]
        router._clock = lambda: fake_now[0]
        placement = router.register("kernel", operator, replicas=1)
        with router:
            victim = router.shard(placement[0])
            victim.kill()
            router.matvec("kernel", np.zeros(N), timeout=30)  # demotes the shard
            assert victim.state == DOWN
            assert victim.breaker_open_until == 0.0  # operator chose no restarts
            fake_now[0] += 1e6
            report = router.check_health()[victim.shard_id]
            assert report == {"healthy": False, "action": None}
            assert victim.restarts == 0

    def test_breaker_cooldown_validation(self):
        with pytest.raises(ServingConfigError):
            HealthPolicy(breaker_cooldown_s=-1)
        with pytest.raises(ServingConfigError):
            HealthPolicy(breaker_cooldown_s=True)
        assert HealthPolicy(breaker_cooldown_s=0).breaker_cooldown_s == 0.0
