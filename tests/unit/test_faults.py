"""Unit tests for deterministic fault injection and supervised execution.

The contracts under test:

* the fault-point registry validates like the other registries
  (register / duplicate / unknown / unregister),
* triggers are pure, seeded, and reproducible — two identical plans make
  identical fire/skip decisions,
* ``fire`` is a no-op unless a plan is armed, and arming is scoped,
* :class:`~repro.core.sharding.SupervisedPool` survives task errors,
  killed workers, and stalls by re-forking and retrying, raises a typed
  :class:`~repro.errors.WorkerCrashError` past the budget, and keeps the
  ``faults_injected == faults_recovered + faults_degraded`` ledger,
* the sharded backends degrade to their single-process equivalents
  **bit-identically**, and no ``/dev/shm`` segment survives a failed
  (or healthy) sharded run.
"""

import errno
import os

import numpy as np
import pytest

from repro import ConfigurationError, GOFMMConfig
from repro.config import DistanceMetric
from repro.core.distances import make_distance
from repro.core.interactions import build_node_neighbor_lists
from repro.core.neighbor_backends import _run_blocked, _run_sharded
from repro.core.neighbors import all_nearest_neighbors
from repro.core.sharding import SharedSlab, SupervisedPool, fork_available
from repro.core.skeletonization_batched import skeletonize_tree_batched
from repro.core.skeletonization_sharded import skeletonize_tree_sharded
from repro.core.tree import build_tree
from repro.errors import WorkerCrashError
from repro.faults import (
    FaultPlan,
    always,
    available_fault_points,
    first_n,
    get_fault_point,
    injection,
    is_registered,
    match,
    nth_call,
    probability,
    register_point,
    unregister_point,
)
from repro.obs import counters

from ..conftest import make_gaussian_kernel_matrix

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires the fork start method")


@pytest.fixture(autouse=True)
def _clean_state():
    counters.reset()
    yield
    injection.disarm()
    counters.reset()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtins_available(self):
        assert {"shard.worker", "storage.read", "spill.write", "serving.shard"} <= set(
            available_fault_points()
        )
        assert is_registered("shard.worker")

    def test_unknown_point_raises_with_known_list(self):
        with pytest.raises(ConfigurationError, match="registered points"):
            get_fault_point("nope")
        with pytest.raises(ConfigurationError, match="registered points"):
            FaultPlan().inject("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_point("storage.read")

    def test_register_unregister_custom_point(self):
        spec = register_point("test.custom", description="for this test")
        try:
            assert is_registered("test.custom")
            assert get_fault_point("test.custom") is spec
        finally:
            unregister_point("test.custom")
        assert not is_registered("test.custom")
        with pytest.raises(ConfigurationError, match="not registered"):
            unregister_point("test.custom")

    def test_default_errors_of_builtins(self):
        assert get_fault_point("storage.read").default_error().errno == errno.EIO
        assert get_fault_point("spill.write").default_error().errno == errno.ENOSPC
        assert get_fault_point("serving.shard").default_error is None


# ---------------------------------------------------------------------------
# triggers and scripting
# ---------------------------------------------------------------------------

class TestTriggers:
    def _flag_pattern(self, plan, calls, **ctx):
        # serving.shard has no default error, so an actionless inject is a
        # flag — fire() returns the trigger decision without raising.
        with plan.armed():
            return [injection.fire("serving.shard", **ctx) for _ in range(calls)]

    def test_nth_call_fires_exactly_once(self):
        plan = FaultPlan()
        plan.inject("serving.shard", trigger=nth_call(3))
        assert self._flag_pattern(plan, 5) == [False, False, True, False, False]

    def test_first_n_fires_on_the_first_calls(self):
        plan = FaultPlan()
        plan.inject("serving.shard", trigger=first_n(2), times=None)
        assert self._flag_pattern(plan, 4) == [True, True, False, False]

    def test_times_bounds_always(self):
        plan = FaultPlan()
        plan.inject("serving.shard", trigger=always(), times=2)
        assert self._flag_pattern(plan, 4) == [True, True, False, False]

    def test_match_fires_on_context(self):
        plan = FaultPlan()
        plan.inject("serving.shard", trigger=match(shard="shard-1"), times=None)
        with plan.armed():
            assert not injection.fire("serving.shard", shard="shard-0")
            assert injection.fire("serving.shard", shard="shard-1")
            assert not injection.fire("serving.shard")  # key absent: no match

    def test_probability_is_seed_reproducible(self):
        def pattern(seed):
            plan = FaultPlan(seed=seed)
            plan.inject("serving.shard", trigger=probability(0.5), times=None)
            return self._flag_pattern(plan, 64)

        assert pattern(7) == pattern(7)
        assert any(pattern(7)) and not all(pattern(7))
        assert pattern(7) != pattern(8)  # different seed, different chaos

    def test_scripting_validation(self):
        plan = FaultPlan()
        with pytest.raises(ConfigurationError, match="n >= 1"):
            nth_call(0)
        with pytest.raises(ConfigurationError, match="p in"):
            probability(1.5)
        with pytest.raises(ConfigurationError, match="key=value"):
            match()
        with pytest.raises(ConfigurationError, match="kill= excludes"):
            plan.inject("shard.worker", kill=True, error=ValueError("x"))
        with pytest.raises(ConfigurationError, match="either error= or stall_s="):
            plan.inject("shard.worker", error=ValueError("x"), stall_s=1.0)
        with pytest.raises(ConfigurationError, match="stall_s must be positive"):
            plan.inject("shard.worker", stall_s=0.0)
        with pytest.raises(ConfigurationError, match="times must be"):
            plan.inject("shard.worker", times=0)

    def test_points_and_has(self):
        plan = FaultPlan()
        plan.inject("storage.read")
        plan.inject("spill.write")
        assert plan.points() == ("spill.write", "storage.read")
        assert plan.has("storage.read") and not plan.has("shard.worker")


# ---------------------------------------------------------------------------
# arming and the fire fast path
# ---------------------------------------------------------------------------

class TestArming:
    def test_fire_is_noop_when_disarmed(self):
        assert not injection.armed()
        assert injection.fire("storage.read") is False
        assert counters.get("faults_injected") == 0

    def test_arming_is_scoped_and_restores_previous(self):
        outer, inner = FaultPlan(), FaultPlan()
        with injection.arming(outer):
            assert injection.active_plan() is outer
            with injection.arming(inner):
                assert injection.active_plan() is inner
            assert injection.active_plan() is outer
        assert injection.active_plan() is None

    def test_armed_for_reports_scripted_points(self):
        plan = FaultPlan()
        plan.inject("storage.read")
        with plan.armed():
            assert injection.armed_for("storage.read")
            assert not injection.armed_for("spill.write")

    def test_default_error_raised_and_counted(self):
        plan = FaultPlan()
        plan.inject("storage.read", trigger=nth_call(1))
        with plan.armed():
            with pytest.raises(OSError) as info:
                injection.fire("storage.read", path="x")
            assert info.value.errno == errno.EIO
            assert injection.fire("storage.read", path="x") is False  # budget spent
        assert plan.injected == 1
        assert counters.get("faults_injected") == 1

    def test_record_detection_requires_scripted_point(self):
        plan = FaultPlan()
        with plan.armed():
            assert injection.record_detection("shard.worker", 3) is False
        plan.inject("shard.worker", kill=True)
        with plan.armed():
            assert injection.record_detection("shard.worker", 3) is True
        assert plan.injected == 3 and plan.detected == 3
        assert counters.get("faults_injected") == 3
        assert injection.record_detection("shard.worker") is False  # disarmed


# ---------------------------------------------------------------------------
# supervised fork pool
# ---------------------------------------------------------------------------

def _triple(x):
    return 3 * x


@needs_fork
class TestSupervisedPool:
    def test_map_returns_results_in_task_order(self):
        with SupervisedPool(2) as pool:
            assert pool.map(_triple, range(6)) == [0, 3, 6, 9, 12, 15]

    def test_task_error_is_retried_and_recovered(self):
        plan = FaultPlan()
        plan.inject("shard.worker", trigger=match(task=1, attempt=0), times=None,
                    error=lambda: RuntimeError("injected task failure"))
        with plan.armed(), SupervisedPool(2, retries=2, backoff_s=0.01) as pool:
            assert pool.map(_triple, range(4)) == [0, 3, 6, 9]
        # The error fired in the child; the parent ledger counts it at
        # detection time and the successful retry as a recovery.
        assert plan.detected == 1
        assert counters.get("faults_injected") == 1
        assert counters.get("faults_recovered") == 1

    def test_killed_worker_is_detected_and_retried(self):
        plan = FaultPlan()
        plan.inject("shard.worker", kill=True, trigger=match(task=0, attempt=0), times=None)
        with plan.armed(), SupervisedPool(
            2, retries=2, task_timeout=2.0, backoff_s=0.01
        ) as pool:
            assert pool.map(_triple, range(4)) == [0, 3, 6, 9]
        assert plan.detected >= 1
        assert counters.get("faults_recovered") >= 1

    def test_stalled_worker_is_detected_and_retried(self):
        plan = FaultPlan()
        plan.inject("shard.worker", stall_s=30.0, trigger=match(task=0, attempt=0), times=None)
        with plan.armed(), SupervisedPool(
            2, retries=1, task_timeout=0.5, backoff_s=0.01
        ) as pool:
            assert pool.map(_triple, range(3)) == [0, 3, 6]
        assert counters.get("faults_recovered") >= 1

    def test_budget_exhaustion_raises_typed_error(self):
        plan = FaultPlan()
        plan.inject("shard.worker", trigger=match(task=0), times=None,
                    error=lambda: RuntimeError("injected persistent failure"))
        with plan.armed(), SupervisedPool(2, retries=1, backoff_s=0.01) as pool:
            with pytest.raises(WorkerCrashError, match="retry budget") as info:
                pool.map(_triple, range(3))
        assert info.value.failed_tasks == (0,)
        assert info.value.attempts == 2
        # Both rounds lost task 0; both are accounted as injected.
        assert counters.get("faults_injected") == 2
        assert counters.get("faults_recovered") == 0


# ---------------------------------------------------------------------------
# shared-slab lifetime + bit-identical degradation
# ---------------------------------------------------------------------------

def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError):  # pragma: no cover - non-tmpfs hosts
        return None


def _prepared(n=192, seed=0, **overrides):
    matrix = make_gaussian_kernel_matrix(n=n, d=3, bandwidth=1.5, seed=seed)
    config = GOFMMConfig(**{
        "leaf_size": 32, "max_rank": 16, "tolerance": 1e-6, "neighbors": 8,
        "budget": 0.2, "num_neighbor_trees": 3, "distance": DistanceMetric.KERNEL,
        "seed": seed, **overrides,
    })
    distance = make_distance(matrix, config.distance)
    rng = np.random.default_rng(seed)
    neighbors = all_nearest_neighbors(distance, config, rng=rng)
    tree = build_tree(matrix.n, config, distance, rng=rng)
    build_node_neighbor_lists(tree, neighbors, rng=rng)
    return matrix, config, tree, neighbors


class TestSharedSlabLifetime:
    def test_context_manager_closes_and_unlinks(self):
        before = _shm_entries()
        with SharedSlab((4, 4), np.float64) as slab:
            slab.array[:] = 7.0
            assert slab.array.sum() == 112.0
        with pytest.raises(ValueError, match="closed"):
            slab.array
        if before is not None:
            assert _shm_entries() <= before

    @needs_fork
    def test_failed_sharded_compression_leaks_no_segment_and_matches_batched(self):
        m1, c1, t1, n1 = _prepared()
        m2, c2, t2, n2 = _prepared()
        c2 = c2.replace(
            compression_backend="sharded", compression_workers=2,
            shard_retries=0, shard_task_timeout_s=1.0,
        )
        plan = FaultPlan()
        plan.inject("shard.worker", kill=True, trigger=always(), times=None)

        before = _shm_entries()
        s1 = skeletonize_tree_batched(t1, m1, c1, n1, rng=np.random.default_rng(9))
        with plan.armed():
            s2 = skeletonize_tree_sharded(t2, m2, c2, n2, rng=np.random.default_rng(9))
        if before is not None:
            assert _shm_entries() <= before  # every slab closed and unlinked

        # Degraded run: bit-identical to the batched backend, fully counted.
        for a, b in zip(t1.nodes, t2.nodes):
            assert a.skeleton_rank == b.skeleton_rank
            if a.skeleton is not None:
                assert np.array_equal(a.skeleton, b.skeleton)
                assert np.array_equal(a.coeffs, b.coeffs)
        assert s1.ranks == s2.ranks
        assert counters.get("faults_degraded") == 1
        assert plan.detected >= 1

    @needs_fork
    def test_failed_sharded_neighbors_degrade_bitwise_to_blocked(self):
        matrix = make_gaussian_kernel_matrix(n=192, d=3, bandwidth=1.5, seed=1)
        config = GOFMMConfig(
            leaf_size=32, max_rank=16, neighbors=8, budget=0.2, num_neighbor_trees=3,
            distance=DistanceMetric.KERNEL, seed=1,
            neighbor_workers=2, shard_retries=0,
        )
        distance = make_distance(matrix, config.distance)
        plan = FaultPlan()
        plan.inject("shard.worker", trigger=always(), times=None,
                    error=lambda: RuntimeError("injected shard failure"))

        before = _shm_entries()
        with plan.armed():
            faulty = _run_sharded(distance, config, np.random.default_rng(5))
        healthy = _run_blocked(distance, config, np.random.default_rng(5))
        if before is not None:
            assert _shm_entries() <= before

        assert np.array_equal(faulty.indices, healthy.indices)
        assert np.array_equal(faulty.distances, healthy.distances)
        assert faulty.iterations == healthy.iterations
        assert faulty.converged == healthy.converged
        assert counters.get("faults_degraded") == 1

    @needs_fork
    def test_healthy_sharded_run_leaks_no_segment(self):
        m, c, t, n = _prepared()
        c = c.replace(compression_backend="sharded", compression_workers=2)
        before = _shm_entries()
        skeletonize_tree_sharded(t, m, c, n, rng=np.random.default_rng(9))
        if before is not None:
            assert _shm_entries() <= before
