"""Unit tests for the interpolative decomposition (pivoted-QR ID)."""

import numpy as np
import pytest

from repro.linalg import interpolative_decomposition
from repro.linalg.id import id_reconstruction


def low_rank_matrix(p, n, rank, seed=0, noise=0.0):
    gen = np.random.default_rng(seed)
    a = gen.standard_normal((p, rank)) @ gen.standard_normal((rank, n))
    if noise:
        a += noise * gen.standard_normal((p, n))
    return a


class TestExactRank:
    def test_exact_low_rank_recovery(self):
        a = low_rank_matrix(60, 40, rank=7, seed=1)
        decomposition = interpolative_decomposition(a, max_rank=20, tolerance=1e-10)
        assert decomposition.rank == 7
        err = np.linalg.norm(id_reconstruction(a, decomposition) - a) / np.linalg.norm(a)
        assert err < 1e-10

    def test_full_rank_matrix_uses_cap(self):
        gen = np.random.default_rng(2)
        a = gen.standard_normal((50, 30))
        decomposition = interpolative_decomposition(a, max_rank=10, tolerance=1e-15)
        assert decomposition.rank == 10

    def test_identity_coefficients_on_skeleton(self):
        a = low_rank_matrix(40, 25, rank=5, seed=3)
        decomposition = interpolative_decomposition(a, max_rank=10, tolerance=1e-12)
        sub = decomposition.coeffs[:, decomposition.skeleton]
        assert np.allclose(sub, np.eye(decomposition.rank), atol=1e-10)


class TestAdaptiveRank:
    def test_tolerance_controls_rank(self):
        # Singular values decay geometrically; looser tolerance => smaller rank.
        gen = np.random.default_rng(4)
        u, _ = np.linalg.qr(gen.standard_normal((80, 80)))
        v, _ = np.linalg.qr(gen.standard_normal((50, 50)))
        s = np.array([10.0 ** (-k / 2) for k in range(50)])
        a = u[:, :50] @ np.diag(s) @ v.T
        loose = interpolative_decomposition(a, max_rank=50, tolerance=1e-2)
        tight = interpolative_decomposition(a, max_rank=50, tolerance=1e-8)
        assert loose.rank < tight.rank

    def test_tighter_tolerance_lowers_error(self):
        a = low_rank_matrix(60, 40, rank=40, seed=5, noise=0.0)
        errs = []
        for tol in (1e-1, 1e-3, 1e-6):
            dec = interpolative_decomposition(a, max_rank=40, tolerance=tol)
            errs.append(np.linalg.norm(id_reconstruction(a, dec) - a) / np.linalg.norm(a))
        assert errs[0] >= errs[1] >= errs[2]

    def test_non_adaptive_uses_max_rank(self):
        a = low_rank_matrix(30, 20, rank=3, seed=6)
        dec = interpolative_decomposition(a, max_rank=10, tolerance=1e-1, adaptive=False)
        assert dec.rank == 10

    def test_error_bounded_by_trailing_singular_values(self):
        gen = np.random.default_rng(7)
        a = gen.standard_normal((64, 48))
        dec = interpolative_decomposition(a, max_rank=20, tolerance=0.0, adaptive=False)
        err = np.linalg.norm(id_reconstruction(a, dec) - a, 2)
        sigma = np.linalg.svd(a, compute_uv=False)
        # Column ID error is bounded by a modest polynomial factor of sigma_{k+1}.
        assert err <= 50.0 * sigma[20]


class TestEdgeCases:
    def test_zero_matrix(self):
        dec = interpolative_decomposition(np.zeros((10, 6)), max_rank=4, tolerance=1e-8)
        assert dec.rank == 0
        assert dec.coeffs.shape == (0, 6)

    def test_empty_matrix(self):
        dec = interpolative_decomposition(np.zeros((0, 5)), max_rank=4)
        assert dec.rank == 0

    def test_no_columns(self):
        dec = interpolative_decomposition(np.zeros((5, 0)), max_rank=4)
        assert dec.rank == 0
        assert dec.coeffs.shape[1] == 0

    def test_single_column(self):
        a = np.arange(1.0, 6.0).reshape(5, 1)
        dec = interpolative_decomposition(a, max_rank=3, tolerance=1e-10)
        assert dec.rank == 1
        assert np.allclose(id_reconstruction(a, dec), a)

    def test_rank_one_cap(self):
        a = low_rank_matrix(20, 15, rank=6, seed=8)
        dec = interpolative_decomposition(a, max_rank=1, tolerance=1e-12)
        assert dec.rank == 1

    def test_skeleton_indices_are_valid_columns(self):
        a = low_rank_matrix(30, 12, rank=4, seed=9)
        dec = interpolative_decomposition(a, max_rank=6, tolerance=1e-10)
        assert np.all(dec.skeleton >= 0)
        assert np.all(dec.skeleton < 12)
        assert len(np.unique(dec.skeleton)) == dec.rank

    def test_reconstruct_method(self):
        a = low_rank_matrix(25, 18, rank=5, seed=10)
        dec = interpolative_decomposition(a, max_rank=8, tolerance=1e-12)
        recon = dec.reconstruct(a[:, dec.skeleton])
        assert np.allclose(recon, a, atol=1e-8)
