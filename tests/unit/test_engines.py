"""Unit tests for the evaluation-engine registry (repro.core.engines)."""

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.config import DistanceMetric
from repro.core import engines
from repro.errors import ConfigurationError, EvaluationError
from repro.gofmm import compress

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def compressed():
    matrix = make_gaussian_kernel_matrix(n=180, d=3, bandwidth=1.5, seed=0)
    config = GOFMMConfig(
        leaf_size=32, max_rank=24, tolerance=1e-7, neighbors=8,
        budget=0.2, num_neighbor_trees=3, distance=DistanceMetric.KERNEL, seed=0,
    )
    return compress(matrix, config)


class TestRegistry:
    def test_builtins_registered(self):
        assert engines.is_registered("planned")
        assert engines.is_registered("reference")
        assert set(engines.available_engines()) >= {"planned", "reference"}

    def test_planned_requires_cached_blocks(self):
        assert engines.get_engine("planned").requires_cached_blocks
        assert not engines.get_engine("reference").requires_cached_blocks

    def test_unknown_engine_raises_with_listing(self):
        with pytest.raises(EvaluationError, match="registered engines"):
            engines.get_engine("warp-drive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(EvaluationError, match="already registered"):
            engines.register("planned", lambda c, w, k: w)

    def test_register_unregister_roundtrip(self):
        spec = engines.register("doubling", lambda c, w, counters=None: 2.0 * np.asarray(w))
        try:
            assert engines.is_registered("doubling")
            assert spec.name == "doubling"
        finally:
            engines.unregister("doubling")
        assert not engines.is_registered("doubling")
        with pytest.raises(EvaluationError):
            engines.unregister("doubling")


class TestDispatch:
    def test_matvec_dispatches_to_custom_engine(self, compressed):
        calls = []

        def custom(cm, w, counters=None):
            calls.append(cm)
            return cm.matvec(w, engine="reference")

        engines.register("custom-test", custom)
        try:
            w = np.random.default_rng(0).standard_normal(compressed.n)
            out = compressed.matvec(w, engine="custom-test")
            assert calls == [compressed]
            assert np.allclose(out, compressed.matvec(w, engine="reference"))
        finally:
            engines.unregister("custom-test")

    def test_matvec_unknown_engine_raises(self, compressed):
        with pytest.raises(EvaluationError):
            compressed.matvec(np.zeros(compressed.n), engine="nope")

    def test_config_validates_against_registry(self):
        with pytest.raises(ConfigurationError):
            GOFMMConfig(evaluation_engine="not-an-engine")
        engines.register("config-test", lambda c, w, counters=None: w)
        try:
            config = GOFMMConfig(evaluation_engine="config-test")
            assert config.evaluation_engine == "config-test"
        finally:
            engines.unregister("config-test")

    def test_default_engine_falls_back_without_cached_blocks(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, bandwidth=1.2, seed=1)
        config = GOFMMConfig(
            leaf_size=25, max_rank=16, neighbors=8, budget=0.2, num_neighbor_trees=2,
            cache_near_blocks=False, cache_far_blocks=False, seed=0,
        )
        cm = compress(matrix, config)
        # "planned" requires cached blocks → the default degrades to the
        # streamed engine until a plan is explicitly built.
        assert cm.default_engine() == "streamed"
        cm.plan()
        assert cm.default_engine() == "planned"
        # without a source matrix there is nothing to stream from
        cm2 = compress(matrix, config)
        cm2.matrix = None
        assert cm2.default_engine() == "reference"
