"""Unit tests for the top-level user API (repro.gofmm)."""

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.gofmm import RunResult, compress, compress_fmm, compress_hss, run
from repro.core.compress import CompressionReport

from ..conftest import make_gaussian_kernel_matrix


@pytest.fixture(scope="module")
def matrix():
    return make_gaussian_kernel_matrix(n=180, d=3, bandwidth=1.5, seed=0)


COMMON = dict(leaf_size=32, max_rank=24, tolerance=1e-7, neighbors=8, num_neighbor_trees=3, seed=0)


class TestConvenienceCompressors:
    def test_compress_accepts_plain_numpy_array(self):
        gen = np.random.default_rng(0)
        a = gen.standard_normal((96, 96))
        spd = a @ a.T + 96 * np.eye(96)
        cm = compress(spd, GOFMMConfig(leaf_size=24, max_rank=24, budget=0.0, seed=0))
        w = gen.standard_normal(96)
        assert np.all(np.isfinite(cm.matvec(w)))

    def test_compress_hss_has_no_sparse_correction(self, matrix):
        cm = compress_hss(matrix, **COMMON)
        assert cm.config.budget == 0.0
        assert cm.lists.is_hss()

    def test_compress_fmm_has_sparse_correction(self, matrix):
        cm = compress_fmm(matrix, budget=0.3, **COMMON)
        assert cm.config.budget == pytest.approx(0.3)
        assert not cm.lists.is_hss()

    def test_default_config_used_when_none(self, matrix):
        cm = compress(matrix)
        assert cm.n == matrix.n


class TestRun:
    def test_run_returns_complete_result(self, matrix):
        result = run(matrix, GOFMMConfig(budget=0.2, **COMMON), num_rhs=8)
        assert isinstance(result, RunResult)
        assert isinstance(result.report, CompressionReport)
        assert result.compression_seconds > 0
        assert result.evaluation_seconds > 0
        assert 0 <= result.epsilon2 < 1
        assert result.num_rhs == 8
        assert result.average_rank > 0

    def test_run_exact_error_option(self, matrix):
        sampled = run(matrix, GOFMMConfig(budget=0.2, **COMMON), num_rhs=6, exact_error=False)
        exact = run(matrix, GOFMMConfig(budget=0.2, **COMMON), num_rhs=6, exact_error=True)
        # Both estimates describe the same compression; they agree to within a factor.
        assert exact.epsilon2 == pytest.approx(sampled.epsilon2, rel=2.0, abs=1e-8)

    def test_report_summary_is_readable(self, matrix):
        result = run(matrix, GOFMMConfig(budget=0.1, **COMMON), num_rhs=4)
        text = result.report.summary()
        assert "compression:" in text
        assert "avg rank" in text
