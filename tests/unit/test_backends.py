"""Unit tests for the compression-backend registry and the batched skeletonizer.

The contract under test: ``"reference"`` and ``"batched"`` draw every
node's row sample from the same deterministic per-node stream, so with a
shared stage generator they must select **identical** skeletons and ranks
(not merely statistically equivalent ones), and the compressed operators
they produce must agree to floating-point noise.
"""

import numpy as np
import pytest

from repro import ConfigurationError, GOFMMConfig
from repro.api import Session
from repro.config import DistanceMetric
from repro.core import backends
from repro.core.backends import bucket_size, pad_ranks
from repro.core.compress import stage_rng
from repro.core.distances import make_distance
from repro.core.interactions import build_node_neighbor_lists
from repro.core.neighbors import all_nearest_neighbors
from repro.core.sharding import fork_available
from repro.core.skeletonization import skeletonize_tree
from repro.core.skeletonization_batched import skeletonize_tree_batched
from repro.core.skeletonization_sharded import skeletonize_tree_sharded
from repro.core.tree import build_tree
from repro.errors import CompressionError, RankDeficiencyError
from repro.linalg.id import batched_interpolative_decomposition, interpolative_decomposition
from repro.matrices import DenseSPD

from ..conftest import make_gaussian_kernel_matrix


def prepared(n=320, leaf_size=32, max_rank=16, tolerance=1e-6, adaptive=True, seed=0):
    matrix = make_gaussian_kernel_matrix(n=n, d=3, bandwidth=1.5, seed=seed)
    config = GOFMMConfig(
        leaf_size=leaf_size, max_rank=max_rank, tolerance=tolerance, neighbors=8,
        budget=0.2, num_neighbor_trees=3, adaptive_rank=adaptive,
        distance=DistanceMetric.KERNEL, seed=seed,
    )
    distance = make_distance(matrix, config.distance)
    rng = np.random.default_rng(seed)
    neighbors = all_nearest_neighbors(distance, config, rng=rng)
    tree = build_tree(matrix.n, config, distance, rng=rng)
    build_node_neighbor_lists(tree, neighbors, rng=rng)
    return matrix, config, tree, neighbors


class TestRegistry:
    def test_builtins_available(self):
        assert {"reference", "batched"} <= set(backends.available_backends())
        assert backends.is_registered("reference")
        assert backends.is_registered("batched")

    def test_get_unknown_raises_with_known_list(self):
        with pytest.raises(CompressionError, match="registered backends"):
            backends.get_backend("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CompressionError, match="already registered"):
            backends.register("reference", lambda *a, **k: None)

    def test_register_unregister_roundtrip(self):
        spec = backends.register("custom-test", lambda *a, **k: None, description="x")
        try:
            assert backends.get_backend("custom-test") is spec
            assert "custom-test" in backends.available_backends()
        finally:
            backends.unregister("custom-test")
        assert not backends.is_registered("custom-test")
        with pytest.raises(CompressionError):
            backends.unregister("custom-test")

    def test_config_validates_against_registry(self):
        with pytest.raises(ConfigurationError, match="compression_backend"):
            GOFMMConfig(compression_backend="does-not-exist")
        assert GOFMMConfig(compression_backend="reference").compression_backend == "reference"
        assert GOFMMConfig().compression_backend == "batched"

    def test_custom_backend_usable_through_config_and_session(self):
        calls = []

        def spy(tree, matrix, config, neighbors, rng=None):
            calls.append(tree)
            return skeletonize_tree(tree, matrix, config, neighbors, rng=rng)

        backends.register("spy-test", spy)
        try:
            matrix = make_gaussian_kernel_matrix(n=96, d=2, bandwidth=1.0, seed=3)
            config = GOFMMConfig(
                leaf_size=16, max_rank=8, neighbors=4, num_neighbor_trees=2,
                seed=0, compression_backend="spy-test",
            )
            op = Session(matrix, config).compress()
            assert len(calls) == 1
            assert op.relative_error() < 0.5
        finally:
            backends.unregister("spy-test")

    def test_plan_rank_bucketing_validated(self):
        with pytest.raises(ConfigurationError, match="plan_rank_bucketing"):
            GOFMMConfig(plan_rank_bucketing="fibonacci")


class TestBucketing:
    def test_bucket_size_pow2(self):
        assert [bucket_size(v) for v in (0, 1, 2, 3, 5, 8, 9)] == [0, 1, 2, 4, 8, 8, 16]

    def test_bucket_size_none_and_max_are_identity(self):
        assert bucket_size(13, "none") == 13
        assert bucket_size(13, "max") == 13

    def test_bucket_size_rejects_unknown_mode(self):
        with pytest.raises(CompressionError):
            bucket_size(4, "weird")

    def test_pad_ranks_modes(self):
        ranks = np.array([0, 3, 5, 8])
        assert list(pad_ranks(ranks, "none")) == [0, 3, 5, 8]
        assert list(pad_ranks(ranks, "pow2")) == [0, 4, 8, 8]
        assert list(pad_ranks(ranks, "max")) == [0, 8, 8, 8]

    def test_pad_ranks_rejects_unknown_mode(self):
        with pytest.raises(CompressionError):
            pad_ranks(np.array([1, 2]), "weird")


class TestBatchedID:
    """batched_interpolative_decomposition vs the per-block reference."""

    @pytest.mark.parametrize("adaptive,tolerance,max_rank", [(True, 1e-6, 10), (False, 0.0, 10)])
    def test_padded_stack_matches_per_block(self, adaptive, tolerance, max_rank):
        rng = np.random.default_rng(7)
        g, P, K = 12, 40, 24
        stack = np.zeros((g, P, K))
        blocks, rc, cc = [], [], []
        for i in range(g):
            p, k = int(rng.integers(8, P + 1)), int(rng.integers(3, K + 1))
            r = int(rng.integers(1, min(p, k) + 1))
            b = rng.standard_normal((p, r)) @ rng.standard_normal((r, k))
            b += 1e-10 * rng.standard_normal((p, k))
            blocks.append(b)
            rc.append(p)
            cc.append(k)
            stack[i, :p, :k] = b
        results = batched_interpolative_decomposition(
            stack, max_rank, tolerance, adaptive=adaptive,
            row_counts=np.array(rc), col_counts=np.array(cc),
        )
        for i in range(g):
            ref = interpolative_decomposition(blocks[i], max_rank, tolerance, adaptive=adaptive)
            assert results[i].rank == ref.rank
            assert np.array_equal(results[i].skeleton, ref.skeleton)
            if ref.rank:
                approx_ref = blocks[i][:, ref.skeleton] @ ref.coeffs
                approx_bat = blocks[i][:, results[i].skeleton] @ results[i].coeffs
                scale = np.linalg.norm(blocks[i])
                assert np.linalg.norm(approx_bat - blocks[i]) <= np.linalg.norm(
                    approx_ref - blocks[i]
                ) + 1e-9 * scale

    def test_padding_never_enters_skeleton(self):
        rng = np.random.default_rng(1)
        stack = np.zeros((9, 16, 16))
        cc = np.full(9, 5)
        stack[:, :10, :5] = rng.standard_normal((9, 10, 5))
        results = batched_interpolative_decomposition(
            stack, 16, 0.0, adaptive=False, row_counts=np.full(9, 10), col_counts=cc
        )
        for res in results:
            assert res.rank <= 5
            assert np.all(res.skeleton < 5)
            assert res.coeffs.shape[1] == 5

    def test_empty_and_zero_blocks(self):
        stack = np.zeros((8, 6, 4))
        results = batched_interpolative_decomposition(stack, 4, 1e-8, adaptive=True)
        assert all(r.rank == 0 for r in results)
        assert batched_interpolative_decomposition(np.zeros((0, 4, 4)), 4) == []


class TestBackendEquivalence:
    @pytest.mark.parametrize("adaptive", [True, False])
    def test_identical_skeletons_and_stats(self, adaptive):
        m1, c1, t1, n1 = prepared(adaptive=adaptive)
        m2, c2, t2, n2 = prepared(adaptive=adaptive)
        s1 = skeletonize_tree(t1, m1, c1, n1, rng=np.random.default_rng(11))
        s2 = skeletonize_tree_batched(t2, m2, c2, n2, rng=np.random.default_rng(11))
        for a, b in zip(t1.nodes, t2.nodes):
            assert a.skeleton_rank == b.skeleton_rank
            if a.skeleton is None:
                assert b.skeleton is None
            else:
                assert np.array_equal(a.skeleton, b.skeleton)
                assert np.allclose(a.coeffs, b.coeffs, atol=1e-8)
        assert s1.ranks == s2.ranks
        assert s1.num_nodes == s2.num_nodes
        assert s1.max_rank == s2.max_rank

    def test_identical_entry_evaluation_counts(self):
        m1, c1, t1, n1 = prepared()
        m2, c2, t2, n2 = prepared()
        base1, base2 = m1.entry_evaluations, m2.entry_evaluations
        skeletonize_tree(t1, m1, c1, n1, rng=np.random.default_rng(5))
        skeletonize_tree_batched(t2, m2, c2, n2, rng=np.random.default_rng(5))
        assert m1.entry_evaluations - base1 == m2.entry_evaluations - base2

    def test_operators_agree_through_session(self):
        matrix = make_gaussian_kernel_matrix(n=256, d=3, bandwidth=1.5, seed=2)
        config = GOFMMConfig(
            leaf_size=32, max_rank=16, tolerance=1e-6, neighbors=8, budget=0.1,
            num_neighbor_trees=3, seed=0,
        )
        op_ref = Session(matrix, config.replace(compression_backend="reference")).compress()
        op_bat = Session(matrix, config.replace(compression_backend="batched")).compress()
        w = np.random.default_rng(0).standard_normal((matrix.n, 4))
        assert np.allclose(op_ref.compressed.matvec(w), op_bat.compressed.matvec(w), atol=1e-8)
        err_ref = op_ref.relative_error()
        err_bat = op_bat.relative_error()
        assert err_bat == pytest.approx(err_ref, abs=1e-10)

    def test_secure_accuracy_raises_in_batched(self):
        identity = DenseSPD(np.eye(64))
        config = GOFMMConfig(
            leaf_size=16, max_rank=8, tolerance=1e-3, budget=0.0,
            distance=DistanceMetric.LEXICOGRAPHIC, secure_accuracy=True,
            compression_backend="batched",
        )
        tree = build_tree(64, config, distance=None)
        with pytest.raises(RankDeficiencyError):
            skeletonize_tree_batched(tree, identity, config, None)

    def test_zero_offdiagonal_allowed_without_secure_accuracy(self):
        identity = DenseSPD(np.eye(64))
        config = GOFMMConfig(
            leaf_size=16, max_rank=8, tolerance=1e-3, budget=0.0,
            distance=DistanceMetric.LEXICOGRAPHIC, secure_accuracy=False,
            compression_backend="batched",
        )
        tree = build_tree(64, config, distance=None)
        stats = skeletonize_tree_batched(tree, identity, config, None)
        assert stats.max_rank == 0


class TestStageDispatch:
    def test_run_skeletons_stage_uses_configured_backend(self, monkeypatch):
        matrix = make_gaussian_kernel_matrix(n=96, d=2, bandwidth=1.0, seed=4)
        called = []

        def fake_batched(tree, m, config, neighbors, rng=None):
            called.append("batched")
            return skeletonize_tree(tree, m, config, neighbors, rng=rng)

        backends.register("batched", fake_batched, overwrite=True)
        try:
            config = GOFMMConfig(
                leaf_size=16, max_rank=8, neighbors=4, num_neighbor_trees=2, seed=0,
                compression_backend="batched",
            )
            Session(matrix, config).compress()
        finally:
            backends.register("batched", backends._run_batched, overwrite=True)
        assert called == ["batched"]

    def test_switching_backend_invalidates_only_skeletons_onward(self):
        matrix = make_gaussian_kernel_matrix(n=128, d=2, bandwidth=1.2, seed=6)
        config = GOFMMConfig(
            leaf_size=16, max_rank=8, neighbors=4, num_neighbor_trees=2, seed=0,
            compression_backend="batched",
        )
        session = Session(matrix, config)
        session.compress()
        assert session.stale_stages(compression_backend="reference") == frozenset(
            {"skeletons", "blocks", "plan"}
        )
        session.recompress(compression_backend="reference")
        assert session.last_built == ("skeletons", "blocks", "plan")
        assert session.last_reused == ("partition", "neighbors", "interactions")

    def test_switching_bucketing_invalidates_only_plan(self):
        matrix = make_gaussian_kernel_matrix(n=128, d=2, bandwidth=1.2, seed=6)
        config = GOFMMConfig(
            leaf_size=16, max_rank=8, neighbors=4, num_neighbor_trees=2, seed=0,
        )
        session = Session(matrix, config)
        session.compress()
        assert session.stale_stages(plan_rank_bucketing="none") == frozenset({"plan"})
        op = session.recompress(plan_rank_bucketing="none")
        assert session.last_built == ("plan",)
        w = np.random.default_rng(1).standard_normal(matrix.n)
        assert np.allclose(
            op.compressed.matvec(w, engine="planned"),
            op.compressed.matvec(w, engine="reference"),
            atol=1e-10,
        )


class TestShardedEquivalence:
    """The ``"sharded"`` backend must reproduce ``"batched"`` bit for bit.

    Subtrees factor perfectly (each node's sample stream depends only on
    the stage base and its node id), so the worker count is an execution
    knob: any ``compression_workers`` yields the same skeletons, coeffs,
    ranks and entry-evaluation counts as the single-process level sweep.
    """

    @pytest.mark.skipif(not fork_available(), reason="requires the fork start method")
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_identical_nodes_and_evaluations(self, workers):
        m1, c1, t1, n1 = prepared(n=384, leaf_size=32)
        m2, c2, t2, n2 = prepared(n=384, leaf_size=32)
        c2 = c2.replace(compression_backend="sharded", compression_workers=workers)
        base1, base2 = m1.entry_evaluations, m2.entry_evaluations
        s1 = skeletonize_tree_batched(t1, m1, c1, n1, rng=np.random.default_rng(9))
        s2 = skeletonize_tree_sharded(t2, m2, c2, n2, rng=np.random.default_rng(9))
        for a, b in zip(t1.nodes, t2.nodes):
            assert a.skeleton_rank == b.skeleton_rank
            if a.skeleton is None:
                assert b.skeleton is None
            else:
                assert np.array_equal(a.skeleton, b.skeleton)
                assert np.array_equal(a.coeffs, b.coeffs)
        assert s1.ranks == s2.ranks
        assert m1.entry_evaluations - base1 == m2.entry_evaluations - base2

    def test_one_worker_falls_back_to_batched(self, monkeypatch):
        m, c, t, n = prepared(n=192, leaf_size=32)
        c = c.replace(compression_backend="sharded", compression_workers=1)
        forked = []
        monkeypatch.setattr(
            "repro.core.sharding.fork_pool",
            lambda workers: forked.append(workers),
        )
        stats = skeletonize_tree_sharded(t, m, c, n, rng=np.random.default_rng(9))
        assert forked == []  # no pool: the batched path ran in-process
        assert stats.num_nodes == len(t.nodes) - 1  # root is never skeletonized

    @pytest.mark.skipif(not fork_available(), reason="requires the fork start method")
    def test_operators_agree_through_session(self):
        matrix = make_gaussian_kernel_matrix(n=256, d=3, bandwidth=1.5, seed=2)
        config = GOFMMConfig(
            leaf_size=32, max_rank=16, tolerance=1e-6, neighbors=8, budget=0.1,
            num_neighbor_trees=3, seed=0,
        )
        op_bat = Session(matrix, config.replace(compression_backend="batched")).compress()
        op_shd = Session(
            matrix,
            config.replace(compression_backend="sharded", compression_workers=2),
        ).compress()
        w = np.random.default_rng(0).standard_normal((matrix.n, 4))
        np.testing.assert_array_equal(
            op_bat.compressed.matvec(w), op_shd.compressed.matvec(w)
        )
