"""Unit tests for the evaluation phase (Algorithm 2.7)."""

import numpy as np
import pytest

from repro import EvaluationError, GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.core.evaluate import EvaluationCounters, evaluate

from ..conftest import make_gaussian_kernel_matrix, make_random_spd


@pytest.fixture(scope="module")
def compressed_pair():
    matrix = make_gaussian_kernel_matrix(n=220, d=3, bandwidth=1.5, seed=0)
    config = GOFMMConfig(
        leaf_size=28, max_rank=28, tolerance=1e-9, neighbors=8,
        budget=0.3, num_neighbor_trees=4, distance=DistanceMetric.KERNEL, seed=0,
    )
    return matrix, compress(matrix, config)


class TestMatvecCorrectness:
    def test_single_vector(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(0).standard_normal(matrix.n)
        exact = matrix.matvec(w)
        approx = evaluate(cm, w)
        assert approx.shape == (matrix.n,)
        assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 5e-2

    def test_multiple_rhs(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(1).standard_normal((matrix.n, 5))
        exact = matrix.matvec(w)
        approx = evaluate(cm, w)
        assert approx.shape == (matrix.n, 5)
        assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 5e-2

    def test_multiple_rhs_consistent_with_single(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(2).standard_normal((matrix.n, 3))
        combined = evaluate(cm, w)
        separate = np.column_stack([evaluate(cm, w[:, j]) for j in range(3)])
        assert np.allclose(combined, separate, atol=1e-10)

    def test_linearity(self, compressed_pair):
        matrix, cm = compressed_pair
        gen = np.random.default_rng(3)
        w1 = gen.standard_normal(matrix.n)
        w2 = gen.standard_normal(matrix.n)
        assert np.allclose(
            evaluate(cm, 2.0 * w1 - 0.5 * w2),
            2.0 * evaluate(cm, w1) - 0.5 * evaluate(cm, w2),
            atol=1e-8,
        )

    def test_matches_explicit_dense_form(self, compressed_pair):
        matrix, cm = compressed_pair
        w = np.random.default_rng(4).standard_normal((matrix.n, 2))
        dense_tilde = cm.to_dense()
        assert np.allclose(evaluate(cm, w), dense_tilde @ w, atol=1e-8)

    def test_zero_input(self, compressed_pair):
        matrix, cm = compressed_pair
        assert np.allclose(evaluate(cm, np.zeros(matrix.n)), 0.0)


class TestInputValidation:
    def test_wrong_length_rejected(self, compressed_pair):
        _, cm = compressed_pair
        with pytest.raises(EvaluationError):
            evaluate(cm, np.zeros(cm.n + 1))

    def test_wrong_rows_rejected(self, compressed_pair):
        _, cm = compressed_pair
        with pytest.raises(EvaluationError):
            evaluate(cm, np.zeros((cm.n - 3, 2)))

    def test_3d_input_rejected(self, compressed_pair):
        _, cm = compressed_pair
        with pytest.raises(EvaluationError):
            evaluate(cm, np.zeros((cm.n, 2, 2)))


class TestCounters:
    def test_flop_counters_populated(self, compressed_pair):
        matrix, cm = compressed_pair
        counters = EvaluationCounters()
        evaluate(cm, np.random.default_rng(5).standard_normal((matrix.n, 4)), counters=counters)
        assert counters.n2s > 0
        assert counters.s2s > 0
        assert counters.s2n > 0
        assert counters.l2l > 0
        assert counters.total == pytest.approx(counters.n2s + counters.s2s + counters.s2n + counters.l2l)

    def test_counters_scale_with_rhs(self, compressed_pair):
        matrix, cm = compressed_pair
        gen = np.random.default_rng(6)
        c1, c4 = EvaluationCounters(), EvaluationCounters()
        evaluate(cm, gen.standard_normal((matrix.n, 1)), counters=c1)
        evaluate(cm, gen.standard_normal((matrix.n, 4)), counters=c4)
        assert c4.total == pytest.approx(4.0 * c1.total, rel=1e-6)


class TestHSSEvaluation:
    def test_hss_matvec_on_matrix_without_structure(self):
        """Budget 0 on an unstructured random SPD matrix still runs (accuracy is not guaranteed)."""
        matrix = make_random_spd(n=96, seed=1, decay=3.0)
        config = GOFMMConfig(
            leaf_size=24, max_rank=24, tolerance=1e-8, neighbors=4, budget=0.0,
            distance=DistanceMetric.ANGLE, num_neighbor_trees=2, seed=0,
        )
        cm = compress(matrix, config)
        w = np.random.default_rng(0).standard_normal(96)
        out = cm.matvec(w)
        assert out.shape == (96,)
        assert np.all(np.isfinite(out))

    def test_hss_is_accurate_for_fast_decay(self):
        matrix = make_random_spd(n=128, seed=2, decay=4.0)
        config = GOFMMConfig(
            leaf_size=32, max_rank=32, tolerance=1e-10, neighbors=4, budget=0.0,
            distance=DistanceMetric.ANGLE, num_neighbor_trees=2, seed=0,
        )
        cm = compress(matrix, config)
        w = np.random.default_rng(1).standard_normal((128, 3))
        exact = matrix.matvec(w)
        approx = cm.matvec(w)
        assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 1e-2
