"""Unit tests for the synthetic ML dataset generators."""

import numpy as np
import pytest

from repro.matrices.datasets import DATASETS, clustered_points, covtype_like, higgs_like, mnist_like


class TestClusteredPoints:
    def test_shape(self):
        pts = clustered_points(100, ambient_dim=10, intrinsic_dim=3, clusters=4, seed=0)
        assert pts.shape == (100, 10)

    def test_standardized(self):
        pts = clustered_points(500, ambient_dim=8, intrinsic_dim=3, clusters=5, seed=1)
        assert np.allclose(pts.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(pts.std(axis=0), 1.0, atol=1e-8)

    def test_deterministic(self):
        a = clustered_points(50, 6, 2, 3, seed=9)
        b = clustered_points(50, 6, 2, 3, seed=9)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = clustered_points(50, 6, 2, 3, seed=1)
        b = clustered_points(50, 6, 2, 3, seed=2)
        assert not np.allclose(a, b)

    def test_intrinsic_dim_capped_at_ambient(self):
        pts = clustered_points(40, ambient_dim=3, intrinsic_dim=10, clusters=2, seed=0)
        assert pts.shape == (40, 3)

    def test_low_intrinsic_dimension_visible_in_spectrum(self):
        # With intrinsic_dim << ambient_dim the covariance spectrum decays fast.
        pts = clustered_points(400, ambient_dim=50, intrinsic_dim=4, clusters=3, noise=0.01, seed=3)
        s = np.linalg.svd(pts - pts.mean(axis=0), compute_uv=False)
        energy_top = np.sum(s[:15] ** 2) / np.sum(s**2)
        assert energy_top > 0.95


@pytest.mark.parametrize(
    "generator,expected_dim",
    [(covtype_like, 54), (higgs_like, 28), (mnist_like, 780)],
    ids=["covtype", "higgs", "mnist"],
)
class TestNamedDatasets:
    def test_dimensions(self, generator, expected_dim):
        pts = generator(64, seed=0)
        assert pts.shape == (64, expected_dim)

    def test_finite(self, generator, expected_dim):
        assert np.all(np.isfinite(generator(32, seed=1)))


class TestSpecRegistry:
    def test_all_specs_present(self):
        assert set(DATASETS) == {"covtype", "higgs", "mnist"}

    def test_bandwidths_positive(self):
        assert all(spec.default_bandwidth > 0 for spec in DATASETS.values())
