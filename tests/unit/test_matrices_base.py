"""Unit tests for the SPDMatrix entry-evaluation interface."""

import numpy as np
import pytest

from repro import NotSPDError
from repro.matrices import CallbackMatrix, DenseSPD, KernelMatrix
from repro.matrices.base import as_spd_matrix
from repro.matrices.kernels import GaussianKernel


def random_spd(n, seed=0):
    gen = np.random.default_rng(seed)
    a = gen.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestDenseSPD:
    def test_entries_block(self):
        a = random_spd(20)
        m = DenseSPD(a)
        rows = np.array([0, 3, 7])
        cols = np.array([1, 2])
        assert np.allclose(m.entries(rows, cols), a[np.ix_(rows, cols)])

    def test_diagonal(self):
        a = random_spd(15)
        m = DenseSPD(a)
        assert np.allclose(m.diagonal(), np.diag(a))
        assert np.allclose(m.diagonal(np.array([2, 5])), np.diag(a)[[2, 5]])

    def test_rejects_nonsymmetric(self):
        a = random_spd(10)
        a[0, 1] += 1.0
        with pytest.raises(NotSPDError):
            DenseSPD(a)

    def test_rejects_nonsquare(self):
        with pytest.raises(NotSPDError):
            DenseSPD(np.zeros((3, 4)))

    def test_matvec_matches_dense(self):
        a = random_spd(12)
        m = DenseSPD(a)
        w = np.random.default_rng(1).standard_normal((12, 2))
        assert np.allclose(m.matvec(w), a @ w)

    def test_entry_counter(self):
        m = DenseSPD(random_spd(10))
        m.reset_counter()
        m.entries(np.arange(3), np.arange(4))
        assert m.entry_evaluations == 12
        m.diagonal(np.arange(5))
        assert m.entry_evaluations == 17

    def test_validate_spd_passes(self):
        DenseSPD(random_spd(30)).validate_spd()

    def test_validate_spd_fails_on_negative_diagonal(self):
        a = random_spd(10)
        a[3, 3] = -1.0
        m = DenseSPD(a)
        with pytest.raises(NotSPDError):
            m.validate_spd(sample=10)

    def test_scalar_index(self):
        a = random_spd(8)
        m = DenseSPD(a)
        assert m.entries(2, 3)[0, 0] == pytest.approx(a[2, 3])


class TestKernelMatrix:
    def test_matches_explicit_kernel(self):
        gen = np.random.default_rng(2)
        pts = gen.standard_normal((30, 3))
        kernel = GaussianKernel(bandwidth=1.2)
        m = KernelMatrix(pts, kernel)
        rows = np.array([0, 5, 9])
        cols = np.array([1, 2, 3, 4])
        assert np.allclose(m.entries(rows, cols), kernel(pts[rows], pts[cols]))

    def test_regularization_only_on_diagonal(self):
        gen = np.random.default_rng(3)
        pts = gen.standard_normal((10, 2))
        m = KernelMatrix(pts, GaussianKernel(), regularization=0.5)
        block = m.entries(np.arange(10), np.arange(10))
        assert block[0, 0] == pytest.approx(1.5)
        assert block[0, 1] < 1.5

    def test_diagonal_uses_kernel_diagonal(self):
        pts = np.random.default_rng(4).standard_normal((12, 2))
        m = KernelMatrix(pts, GaussianKernel(), regularization=0.25)
        assert np.allclose(m.diagonal(), 1.25)

    def test_coordinates_exposed(self):
        pts = np.random.default_rng(5).standard_normal((7, 4))
        m = KernelMatrix(pts, GaussianKernel())
        assert m.coordinates is pts or np.allclose(m.coordinates, pts)

    def test_rejects_1d_points(self):
        with pytest.raises(NotSPDError):
            KernelMatrix(np.arange(5.0), GaussianKernel())


class TestCallbackMatrix:
    def test_callback_is_used(self):
        a = random_spd(16, seed=6)
        m = CallbackMatrix(lambda rows, cols: a[np.ix_(rows, cols)], n=16)
        assert np.allclose(m.to_dense(), a)
        assert m.coordinates is None

    def test_rejects_bad_dimension(self):
        with pytest.raises(NotSPDError):
            CallbackMatrix(lambda r, c: np.zeros((len(r), len(c))), n=0)


class TestCoercion:
    def test_numpy_array(self):
        a = random_spd(9, seed=7)
        m = as_spd_matrix(a)
        assert isinstance(m, DenseSPD)
        assert m.n == 9

    def test_passthrough(self):
        m = DenseSPD(random_spd(6, seed=8))
        assert as_spd_matrix(m) is m

    def test_callback_tuple(self):
        a = random_spd(5, seed=9)
        m = as_spd_matrix((lambda r, c: a[np.ix_(r, c)], 5))
        assert isinstance(m, CallbackMatrix)

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            as_spd_matrix("not a matrix")
