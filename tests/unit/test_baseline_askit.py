"""Unit tests for the ASKIT-like geometric baseline."""

import numpy as np
import pytest

from repro import ConfigurationError
from repro.baselines import compress_askit
from repro.matrices import build_matrix

from ..conftest import make_gaussian_kernel_matrix, make_random_spd


class TestASKIT:
    def test_requires_coordinates(self):
        matrix = make_random_spd(64, seed=0)
        with pytest.raises(ConfigurationError):
            compress_askit(matrix, leaf_size=16, max_rank=16)

    def test_graph_matrices_rejected(self):
        matrix = build_matrix("G03", 96)
        with pytest.raises(ConfigurationError):
            compress_askit(matrix, leaf_size=16, max_rank=16)

    def test_accuracy_on_kernel_matrix(self):
        matrix = make_gaussian_kernel_matrix(n=200, d=3, bandwidth=1.0, seed=1)
        result = compress_askit(matrix, leaf_size=25, max_rank=25, tolerance=1e-9, neighbors=8)
        dense = matrix.to_dense()
        w = np.random.default_rng(0).standard_normal((200, 3))
        err = np.linalg.norm(result.matvec(w) - dense @ w) / np.linalg.norm(dense @ w)
        assert err < 5e-2

    def test_explicit_coordinates_override(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, seed=2)
        result = compress_askit(matrix, coordinates=matrix.coordinates, leaf_size=25, max_rank=20, neighbors=6)
        assert result.compressed.n == 150

    def test_uses_geometric_distance_and_no_symmetrization(self):
        matrix = make_gaussian_kernel_matrix(n=150, d=3, seed=3)
        result = compress_askit(matrix, leaf_size=25, max_rank=20, neighbors=6)
        config = result.compressed.config
        assert config.distance.value == "geometric"
        assert config.symmetrize_lists is False

    def test_near_field_grows_with_kappa(self):
        matrix = make_gaussian_kernel_matrix(n=240, d=3, bandwidth=0.8, seed=4)
        small = compress_askit(matrix, leaf_size=30, max_rank=16, neighbors=2)
        large = compress_askit(matrix, leaf_size=30, max_rank=16, neighbors=32)
        assert (
            large.compressed.lists.total_near_pairs()
            >= small.compressed.lists.total_near_pairs()
        )

    def test_report_and_timing_present(self):
        matrix = make_gaussian_kernel_matrix(n=120, d=3, seed=5)
        result = compress_askit(matrix, leaf_size=30, max_rank=16, neighbors=4)
        assert result.compression_seconds > 0.0
        assert result.report.num_leaves == len(result.compressed.tree.leaves)
