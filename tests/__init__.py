"""Test suite package marker.

The unit/integration/property modules import shared matrix factories with
``from ..conftest import …``, which requires the ``tests`` tree to be a
proper package.
"""
