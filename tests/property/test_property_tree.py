"""Property-based tests for the partition tree invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import GOFMMConfig
from repro.config import DistanceMetric
from repro.core.distances import GeometricDistance
from repro.core.tree import build_tree


@st.composite
def tree_cases(draw):
    n = draw(st.integers(5, 200))
    leaf_size = draw(st.integers(2, 64))
    dim = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    return n, leaf_size, dim, seed


class TestTreeInvariants:
    @given(tree_cases())
    @settings(max_examples=40, deadline=None)
    def test_partition_and_balance(self, case):
        n, leaf_size, dim, seed = case
        points = np.random.default_rng(seed).standard_normal((n, dim))
        config = GOFMMConfig(leaf_size=leaf_size, max_rank=4, neighbors=2, distance=DistanceMetric.GEOMETRIC, seed=seed)
        tree = build_tree(n, config, GeometricDistance(points))
        tree.check_invariants(leaf_size)
        # Permutation covers all indices exactly once.
        assert np.array_equal(np.sort(tree.permutation), np.arange(n))
        # Complete binary tree with all leaves on the bottom level.
        assert len(tree.leaves) == 2**tree.depth
        assert len(tree.nodes) == 2 ** (tree.depth + 1) - 1

    @given(tree_cases())
    @settings(max_examples=40, deadline=None)
    def test_leaf_lookup_consistency(self, case):
        n, leaf_size, dim, seed = case
        points = np.random.default_rng(seed).standard_normal((n, dim))
        config = GOFMMConfig(leaf_size=leaf_size, max_rank=4, neighbors=2, distance=DistanceMetric.GEOMETRIC, seed=seed)
        tree = build_tree(n, config, GeometricDistance(points))
        for i in range(0, n, max(1, n // 13)):
            leaf = tree.leaf_of(i)
            assert i in leaf.indices
            assert leaf.morton == tree.morton_of_index(i)

    @given(tree_cases())
    @settings(max_examples=30, deadline=None)
    def test_depth_is_minimal(self, case):
        n, leaf_size, dim, seed = case
        points = np.random.default_rng(seed).standard_normal((n, dim))
        config = GOFMMConfig(leaf_size=leaf_size, max_rank=4, neighbors=2, distance=DistanceMetric.GEOMETRIC, seed=seed)
        tree = build_tree(n, config, GeometricDistance(points))
        assert n <= leaf_size * 2**tree.depth
        if tree.depth > 0:
            assert n > leaf_size * 2 ** (tree.depth - 1)

    @given(st.integers(5, 150), st.integers(2, 32), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_metric_free_orderings(self, n, leaf_size, seed):
        config = GOFMMConfig(leaf_size=leaf_size, max_rank=4, distance=DistanceMetric.RANDOM, seed=seed)
        tree = build_tree(n, config, distance=None)
        tree.check_invariants(leaf_size)
        assert np.array_equal(np.sort(tree.permutation), np.arange(n))
