"""Property-based tests for the scheduler simulations on random DAGs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime import HEFTScheduler, LevelByLevelScheduler, MachineModel, OmpTaskScheduler, Task, TaskGraph, Worker


MAX_LEVEL = 4


def _group_order(kind: str, level: int) -> int:
    """Barrier-group ordering used by the level-by-level scheduler.

    N2S walks the tree bottom-up, S2N top-down; S2S and L2L are single
    any-order groups.  Random DAGs below only contain edges compatible with
    this ordering, which is exactly the class of DAGs GOFMM produces (its
    dependencies always cross a barrier).
    """
    if kind == "N2S":
        return MAX_LEVEL - level            # bottom-up
    if kind == "S2S":
        return MAX_LEVEL + 1
    if kind == "S2N":
        return MAX_LEVEL + 2 + level        # top-down
    return 3 * MAX_LEVEL + 10               # L2L: independent, last group


@st.composite
def random_dags(draw):
    """Random GOFMM-shaped DAGs: random costs, edges compatible with the traversal order."""
    num_tasks = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 10_000))
    gen = np.random.default_rng(seed)
    graph = TaskGraph()
    kinds = ["N2S", "S2S", "S2N", "L2L"]
    meta = []
    for i in range(num_tasks):
        kind = kinds[int(gen.integers(0, len(kinds)))]
        level = int(gen.integers(0, MAX_LEVEL + 1))
        meta.append((kind, level))
        graph.add_task(
            Task(
                task_id=f"t{i}",
                kind=kind,
                node_id=i,
                level=level,
                flops=float(gen.uniform(1e3, 1e7)),
                gpu_eligible=bool(i % 3 == 0),
            )
        )
    for j in range(1, num_tasks):
        for i in range(j):
            if gen.uniform() < 0.08 and _group_order(*meta[i]) < _group_order(*meta[j]):
                graph.add_dependency(f"t{i}", f"t{j}")
    return graph


@st.composite
def machines(draw):
    cores = draw(st.integers(1, 8))
    gflops = draw(st.floats(1.0, 100.0))
    workers = [Worker(name=f"c{i}", kind="cpu", peak_gflops=gflops, efficiency=0.8, bandwidth_gbs=10.0) for i in range(cores)]
    return MachineModel(name="random", workers=workers)


SCHEDULERS = [LevelByLevelScheduler(), OmpTaskScheduler(), HEFTScheduler()]


class TestSchedulerInvariants:
    @given(random_dags(), machines(), st.sampled_from(SCHEDULERS))
    @settings(max_examples=60, deadline=None)
    def test_schedule_is_valid(self, graph, machine, scheduler):
        result = scheduler.schedule(graph, machine)
        # 1. every task appears exactly once
        assert sorted(e.task_id for e in result.timeline) == sorted(graph.tasks)
        finish = {e.task_id: e.finish for e in result.timeline}
        start = {e.task_id: e.start for e in result.timeline}
        # 2. dependencies respected
        for tid in graph.tasks:
            for pred in graph.predecessors(tid):
                assert finish[pred] <= start[tid] + 1e-9
        # 3. no overlap per worker
        per_worker: dict[str, list] = {}
        for e in result.timeline:
            per_worker.setdefault(e.worker, []).append((e.start, e.finish))
        for intervals in per_worker.values():
            intervals.sort()
            for (s0, f0), (s1, f1) in zip(intervals, intervals[1:]):
                assert f0 <= s1 + 1e-9

    @given(random_dags(), machines(), st.sampled_from(SCHEDULERS))
    @settings(max_examples=60, deadline=None)
    def test_makespan_lower_bounds(self, graph, machine, scheduler):
        result = scheduler.schedule(graph, machine)
        critical = graph.critical_path_time(machine.best_case_seconds)
        work_bound = sum(machine.best_case_seconds(t) for t in graph.tasks.values()) / machine.num_workers
        assert result.makespan >= critical - 1e-9
        assert result.makespan >= work_bound - 1e-9

    @given(random_dags(), machines())
    @settings(max_examples=40, deadline=None)
    def test_heft_not_significantly_worse_than_level_by_level(self, graph, machine):
        """Out-of-order HEFT removes barriers; list-scheduling anomalies may cost a little, never a lot."""
        heft = HEFTScheduler().schedule(graph, machine)
        lbl = LevelByLevelScheduler().schedule(graph, machine)
        assert heft.makespan <= lbl.makespan * 1.5 + 1e-9
