"""Property-based tests for the interpolative decomposition."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg import interpolative_decomposition
from repro.linalg.id import id_reconstruction

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 25)),
    elements=st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
)


class TestIDProperties:
    @given(matrices, st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_structural_invariants(self, a, max_rank):
        dec = interpolative_decomposition(a, max_rank=max_rank, tolerance=1e-10)
        # Rank never exceeds the cap nor the matrix dimensions.
        assert dec.rank <= min(max_rank, a.shape[0], a.shape[1])
        # Skeleton indices are distinct, valid column indices.
        assert len(np.unique(dec.skeleton)) == dec.rank
        if dec.rank:
            assert dec.skeleton.min() >= 0 and dec.skeleton.max() < a.shape[1]
        # Coefficient matrix has the right shape and identity on the skeleton.
        assert dec.coeffs.shape == (dec.rank, a.shape[1])
        if dec.rank:
            assert np.allclose(dec.coeffs[:, dec.skeleton], np.eye(dec.rank), atol=1e-6)

    @given(matrices)
    @settings(max_examples=60, deadline=None)
    def test_full_rank_reconstruction_is_exact(self, a):
        """With the rank cap at min(p, n) and no truncation, the ID reproduces the matrix."""
        cap = min(a.shape)
        dec = interpolative_decomposition(a, max_rank=cap, tolerance=0.0, adaptive=False)
        recon = id_reconstruction(a, dec)
        scale = max(1.0, np.abs(a).max())
        assert np.allclose(recon, a, atol=1e-6 * scale)

    @given(
        st.integers(2, 20),  # rows
        st.integers(2, 15),  # cols
        st.integers(1, 5),   # true rank
        st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_low_rank_matrices_recovered(self, p, n, true_rank, seed):
        gen = np.random.default_rng(seed)
        true_rank = min(true_rank, p, n)
        a = gen.standard_normal((p, true_rank)) @ gen.standard_normal((true_rank, n))
        dec = interpolative_decomposition(a, max_rank=min(p, n), tolerance=1e-9)
        assert dec.rank <= true_rank + 1
        recon = id_reconstruction(a, dec)
        assert np.linalg.norm(recon - a) <= 1e-6 * max(1.0, np.linalg.norm(a))

    @given(matrices, st.floats(1e-12, 1e-1))
    @settings(max_examples=40, deadline=None)
    def test_rank_monotone_in_tolerance(self, a, tol):
        loose = interpolative_decomposition(a, max_rank=min(a.shape), tolerance=tol)
        tight = interpolative_decomposition(a, max_rank=min(a.shape), tolerance=tol * 1e-3)
        assert loose.rank <= tight.rank
