"""Property-based tests for the Near/Far interaction-list invariants.

The invariant that makes the evaluation phase correct is *exactly-once
coverage*: every ordered pair of leaves is accounted for by exactly one
Near or Far relation.  We check it across random geometries, budgets, leaf
sizes and both Far-list constructions.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import GOFMMConfig
from repro.config import DistanceMetric
from repro.core.distances import GeometricDistance
from repro.core.interactions import build_interaction_lists, build_node_neighbor_lists, coverage_matrix
from repro.core.neighbors import all_nearest_neighbors
from repro.core.tree import build_tree


@st.composite
def interaction_cases(draw):
    n = draw(st.integers(20, 160))
    leaf_size = draw(st.integers(4, 32))
    budget = draw(st.sampled_from([0.0, 0.1, 0.3, 0.7, 1.0]))
    kappa = draw(st.integers(1, 8))
    symmetrize = draw(st.booleans())
    seed = draw(st.integers(0, 5000))
    return n, leaf_size, budget, kappa, symmetrize, seed


def build_lists(case):
    n, leaf_size, budget, kappa, symmetrize, seed = case
    points = np.random.default_rng(seed).standard_normal((n, 2))
    config = GOFMMConfig(
        leaf_size=leaf_size,
        max_rank=4,
        neighbors=kappa,
        budget=budget,
        num_neighbor_trees=2,
        distance=DistanceMetric.GEOMETRIC,
        symmetrize_lists=symmetrize,
        seed=seed,
    )
    distance = GeometricDistance(points)
    rng = np.random.default_rng(seed)
    neighbors = all_nearest_neighbors(distance, config, rng=rng)
    tree = build_tree(n, config, distance, rng=rng)
    build_node_neighbor_lists(tree, neighbors, rng=rng)
    lists = build_interaction_lists(tree, neighbors, config)
    return tree, lists, config


class TestCoverageInvariant:
    @given(interaction_cases())
    @settings(max_examples=50, deadline=None)
    def test_every_leaf_pair_covered_exactly_once(self, case):
        tree, lists, _ = build_lists(case)
        coverage = coverage_matrix(tree, lists)
        assert np.all(coverage == 1)

    @given(interaction_cases())
    @settings(max_examples=50, deadline=None)
    def test_every_leaf_near_itself(self, case):
        tree, lists, _ = build_lists(case)
        for leaf in tree.leaves:
            assert leaf.node_id in lists.near[leaf.node_id]

    @given(interaction_cases())
    @settings(max_examples=50, deadline=None)
    def test_far_nodes_never_overlap_owner(self, case):
        tree, lists, _ = build_lists(case)
        for node in tree.nodes:
            owned = set(node.indices.tolist())
            for alpha_id in lists.far[node.node_id]:
                assert owned.isdisjoint(tree.node(alpha_id).indices.tolist())

    @given(interaction_cases())
    @settings(max_examples=30, deadline=None)
    def test_symmetric_construction_yields_symmetric_lists(self, case):
        n, leaf_size, budget, kappa, _, seed = case
        tree, lists, config = build_lists((n, leaf_size, budget, kappa, True, seed))
        for beta, members in lists.near.items():
            for alpha in members:
                assert beta in lists.near[alpha]
        for beta, members in lists.far.items():
            for alpha in members:
                assert beta in lists.far[alpha]

    @given(interaction_cases())
    @settings(max_examples=30, deadline=None)
    def test_budget_zero_is_hss(self, case):
        n, leaf_size, _, kappa, symmetrize, seed = case
        tree, lists, _ = build_lists((n, leaf_size, 0.0, kappa, symmetrize, seed))
        assert lists.is_hss()
