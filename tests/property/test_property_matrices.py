"""Property-based tests on the SPD test-matrix generators."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.matrices import build_matrix
from repro.matrices.kernels import GaussianKernel, InverseMultiquadricKernel, LaplaceKernel, MaternKernel, pairwise_sq_dists

# Generators cheap enough for property testing at many random sizes.
CHEAP_NAMES = ["K02", "K04", "K06", "K10", "K12", "K15", "G01", "G03", "covtype"]


class TestGeneratorProperties:
    @given(st.sampled_from(CHEAP_NAMES), st.integers(16, 96), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_generated_matrices_are_spd(self, name, n, seed):
        matrix = build_matrix(name, n, seed=seed)
        assert matrix.shape == (n, n)
        dense = matrix.to_dense()
        assert np.allclose(dense, dense.T, atol=1e-8 * max(1.0, np.abs(dense).max()))
        eigenvalues = np.linalg.eigvalsh(0.5 * (dense + dense.T))
        assert eigenvalues.min() > -1e-8 * abs(eigenvalues.max())
        assert np.all(np.diag(dense) > 0.0)

    @given(st.sampled_from(CHEAP_NAMES), st.integers(16, 64), st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_entries_consistent_with_dense(self, name, n, seed):
        matrix = build_matrix(name, n, seed=seed)
        dense = matrix.to_dense()
        gen = np.random.default_rng(seed)
        rows = gen.choice(n, size=min(8, n), replace=False)
        cols = gen.choice(n, size=min(6, n), replace=False)
        assert np.allclose(matrix.entries(rows, cols), dense[np.ix_(rows, cols)], atol=1e-10)


POSITIVE_DEFINITE_KERNELS = [
    GaussianKernel(bandwidth=0.7),
    GaussianKernel(bandwidth=2.0),
    LaplaceKernel(bandwidth=1.0),
    InverseMultiquadricKernel(shift=1.0, power=1.0),
    MaternKernel(bandwidth=1.5),
]


class TestKernelPositiveDefiniteness:
    @given(
        st.sampled_from(POSITIVE_DEFINITE_KERNELS),
        st.integers(3, 40),
        st.integers(1, 6),
        st.integers(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_gram_matrix_psd_on_random_points(self, kernel, n, d, seed):
        points = np.random.default_rng(seed).standard_normal((n, d)) * 2.0
        gram = kernel(points, points)
        eigenvalues = np.linalg.eigvalsh(0.5 * (gram + gram.T))
        assert eigenvalues.min() > -1e-7

    @given(st.integers(2, 30), st.integers(1, 5), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_pairwise_sq_dists_properties(self, n, d, seed):
        points = np.random.default_rng(seed).standard_normal((n, d)) * 3.0
        d2 = pairwise_sq_dists(points, points)
        assert np.all(d2 >= 0.0)
        assert np.allclose(d2, d2.T, atol=1e-8)
        assert np.allclose(np.diag(d2), 0.0, atol=1e-8)
