"""Property-based tests for the Gram-space distances.

These check the paper's central claim of §2.1 — that the kernel and angle
expressions define *proper* (pseudo-)distances for **any** SPD matrix — on
randomly generated SPD matrices rather than a handful of hand-picked ones.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distances import AngleDistance, GeometricDistance, KernelDistance
from repro.matrices import DenseSPD


def spd_from_factor(factor: np.ndarray, shift: float = 1e-6) -> DenseSPD:
    n = factor.shape[1]
    k = factor.T @ factor
    k = 0.5 * (k + k.T) + shift * (1.0 + np.abs(np.diag(k)).max()) * np.eye(n)
    return DenseSPD(k, validate=False)


factors = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 8), st.integers(2, 12)),
    elements=st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
)


@st.composite
def spd_matrices(draw):
    return spd_from_factor(draw(factors))


class TestKernelDistanceProperties:
    @given(spd_matrices())
    @settings(max_examples=40, deadline=None)
    def test_nonnegative_symmetric_zero_diagonal(self, matrix):
        dist = KernelDistance(matrix)
        idx = np.arange(matrix.n)
        d = dist.pairwise(idx, idx)
        assert np.all(d >= 0.0)
        assert np.allclose(d, d.T, atol=1e-8)
        assert np.allclose(np.diag(d), 0.0, atol=1e-6)

    @given(spd_matrices())
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, matrix):
        """√(Gram-ℓ2²) is a true metric: d(i,k) ≤ d(i,j) + d(j,k)."""
        dist = KernelDistance(matrix)
        idx = np.arange(matrix.n)
        d = np.sqrt(dist.pairwise(idx, idx))
        n = matrix.n
        for i in range(n):
            for j in range(n):
                lhs = d[i, :]
                rhs = d[i, j] + d[j, :]
                assert np.all(lhs <= rhs + 1e-6)

    @given(spd_matrices())
    @settings(max_examples=30, deadline=None)
    def test_centroid_distance_nonnegative(self, matrix):
        dist = KernelDistance(matrix)
        idx = np.arange(matrix.n)
        sample = idx[: max(1, matrix.n // 2)]
        assert np.all(dist.to_centroid(idx, sample) >= 0.0)


class TestAngleDistanceProperties:
    @given(spd_matrices())
    @settings(max_examples=40, deadline=None)
    def test_bounded_and_symmetric(self, matrix):
        dist = AngleDistance(matrix)
        idx = np.arange(matrix.n)
        d = dist.pairwise(idx, idx)
        assert np.all(d >= 0.0)
        assert np.all(d <= 1.0 + 1e-10)
        assert np.allclose(d, d.T, atol=1e-8)
        assert np.allclose(np.diag(d), 0.0, atol=1e-8)

    @given(spd_matrices())
    @settings(max_examples=40, deadline=None)
    def test_scaling_invariance(self, matrix):
        """Angle distance is invariant to diagonal scaling K -> D K D (Gram vectors rescaled)."""
        gen = np.random.default_rng(0)
        scale = gen.uniform(0.5, 2.0, size=matrix.n)
        scaled = DenseSPD(scale[:, None] * matrix.array * scale[None, :], validate=False)
        idx = np.arange(matrix.n)
        d0 = AngleDistance(matrix).pairwise(idx, idx)
        d1 = AngleDistance(scaled).pairwise(idx, idx)
        assert np.allclose(d0, d1, atol=1e-8)


class TestGeometricDistanceProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(3, 15), st.integers(1, 4)),
            elements=st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_kernel_distance_of_gram_matrix(self, points):
        """Geometric distance on points equals Gram distance of K = X Xᵀ (+shift on the diagonal)."""
        gram = points @ points.T
        gram = 0.5 * (gram + gram.T) + 1e-9 * (1.0 + np.abs(gram).max()) * np.eye(points.shape[0])
        geo = GeometricDistance(points)
        ker = KernelDistance(DenseSPD(gram, validate=False))
        idx = np.arange(points.shape[0])
        assert np.allclose(geo.pairwise(idx, idx), ker.pairwise(idx, idx), atol=1e-5)
