"""Smoke tests running every example script end-to-end (at reduced size)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    """Each example must run to completion at a small problem size."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), "256"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script} produced no output"
