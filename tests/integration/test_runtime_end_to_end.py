"""Integration tests of the runtime substrate against a real compression.

These reproduce, at test scale, the qualitative claims of the scheduling
study (Figure 4) and the architecture study (Table 5):

* dynamic (out-of-order) scheduling never loses to level-by-level and wins
  when per-node work varies,
* strong scaling saturates when the critical path dominates (the
  small-average-rank case the paper highlights on KNL),
* a GPU worker helps workloads dominated by large L2L GEMMs much more than
  it helps skeleton-dominated (small-rank) workloads.
"""

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.matrices import build_matrix
from repro.runtime import (
    CostModel,
    HEFTScheduler,
    build_compression_dag,
    build_evaluation_dag,
    haswell_24,
    haswell_p100,
    knl_68,
    parallel_evaluate,
    simulate_all_schedulers,
)

N = 512


@pytest.fixture(scope="module")
def fmm_compressed():
    matrix = build_matrix("covtype", N, seed=0)
    config = GOFMMConfig(
        leaf_size=64, max_rank=48, tolerance=1e-5, neighbors=16,
        budget=0.25, num_neighbor_trees=4, distance=DistanceMetric.ANGLE, seed=0,
    )
    return compress(matrix, config)


def evaluation_dag(compressed, num_rhs=64):
    cost = CostModel(
        leaf_size=compressed.config.leaf_size,
        rank=max(1, int(compressed.rank_summary()["mean"])),
        num_rhs=num_rhs,
    )
    return build_evaluation_dag(compressed.tree, cost)


class TestSchedulingStudy:
    def test_dynamic_scheduling_beats_level_by_level_on_both_phases(self, fmm_compressed):
        cost = CostModel(leaf_size=64, rank=48, num_rhs=64)
        for dag in (evaluation_dag(fmm_compressed), build_compression_dag(fmm_compressed.tree, cost)):
            results = simulate_all_schedulers(dag, haswell_24())
            assert results["heft"].makespan <= results["level-by-level"].makespan * 1.001

    def test_strong_scaling_curve_monotone_until_saturation(self, fmm_compressed):
        dag = evaluation_dag(fmm_compressed)
        machine = haswell_24()
        scheduler = HEFTScheduler()
        makespans = [scheduler.schedule(dag, machine.with_workers(c)).makespan for c in (1, 2, 4, 8, 16, 24)]
        # Monotone non-increasing (within tolerance) and bounded by the critical path.
        for a, b in zip(makespans, makespans[1:]):
            assert b <= a * 1.05
        critical = dag.critical_path_time(machine.best_case_seconds)
        assert makespans[-1] >= critical - 1e-12

    def test_knl_needs_more_cores_for_same_time(self, fmm_compressed):
        """Per-core KNL is slower; with few cores it must trail Haswell (as in Fig. 4)."""
        dag = evaluation_dag(fmm_compressed)
        scheduler = HEFTScheduler()
        hsw = scheduler.schedule(dag, haswell_24().with_workers(8)).makespan
        knl = scheduler.schedule(dag, knl_68().with_workers(8)).makespan
        assert knl > hsw

    def test_gpu_benefit_larger_for_l2l_heavy_workload(self, fmm_compressed):
        """Table 5 #45/#46: the GPU pays off on direct-evaluation-heavy (L2L) workloads."""
        scheduler = HEFTScheduler()
        # L2L-heavy: large leaves, many right-hand sides.
        heavy = CostModel(leaf_size=512, rank=32, num_rhs=512)
        heavy_dag = build_evaluation_dag(fmm_compressed.tree, heavy)
        # Skeleton-heavy: tiny ranks and few right-hand sides (nothing for the GPU).
        light = CostModel(leaf_size=64, rank=8, num_rhs=1)
        light_dag = build_evaluation_dag(fmm_compressed.tree, light)

        def gpu_speedup(dag):
            cpu_only = scheduler.schedule(dag, haswell_p100().with_workers(12)).makespan
            hybrid = scheduler.schedule(dag, haswell_p100()).makespan
            return cpu_only / hybrid

        assert gpu_speedup(heavy_dag) > gpu_speedup(light_dag)

    def test_threaded_execution_matches_sequential_for_fmm_and_hss(self):
        for budget in (0.0, 0.25):
            matrix = build_matrix("K02", 256, seed=0)
            config = GOFMMConfig(
                leaf_size=32, max_rank=32, tolerance=1e-7, neighbors=8,
                budget=budget, num_neighbor_trees=3, distance=DistanceMetric.ANGLE, seed=0,
            )
            compressed = compress(matrix, config)
            w = np.random.default_rng(0).standard_normal((256, 4))
            assert np.allclose(parallel_evaluate(compressed, w, num_workers=4), compressed.matvec(w), atol=1e-10)
