"""Integration tests for the permutation / distance study (Figure 7 behaviour)."""

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.core.accuracy import exact_relative_error
from repro.matrices import KernelMatrix, build_matrix
from repro.matrices.kernels import GaussianKernel

N = 512


def scrambled_kernel_matrix(n=N, bandwidth=0.8, seed=0):
    """Kernel matrix whose input ordering carries no locality (points shuffled)."""
    from repro.matrices.datasets import clustered_points

    points = clustered_points(n, ambient_dim=6, intrinsic_dim=3, clusters=4, seed=seed)
    points = points[np.random.default_rng(seed + 1).permutation(n)]
    return KernelMatrix(points, GaussianKernel(bandwidth=bandwidth), regularization=1e-8)


def config_for(metric: DistanceMetric, budget: float) -> GOFMMConfig:
    return GOFMMConfig(
        leaf_size=64, max_rank=48, tolerance=1e-8, neighbors=16,
        budget=budget, num_neighbor_trees=5, distance=metric, seed=0,
    )


def error_with(matrix, metric: DistanceMetric) -> float:
    budget = 0.1 if metric.defines_distance else 0.0
    compressed = compress(matrix, config_for(metric, budget))
    return exact_relative_error(compressed, matrix, num_rhs=4)


class TestPermutationStudy:
    def test_distance_based_orderings_beat_metric_free_on_scrambled_kernel(self):
        matrix = scrambled_kernel_matrix()
        err = {metric: error_with(matrix, metric) for metric in DistanceMetric}
        # Figure 7: kernel / angle / geometric orderings reach (much) lower error
        # than lexicographic / random at the same rank.
        for good in (DistanceMetric.KERNEL, DistanceMetric.ANGLE, DistanceMetric.GEOMETRIC):
            for bad in (DistanceMetric.LEXICOGRAPHIC, DistanceMetric.RANDOM):
                assert err[good] < err[bad], f"{good.value} ({err[good]:.2e}) should beat {bad.value} ({err[bad]:.2e})"

    def test_gram_distances_close_to_geometric_reference(self):
        """Geometry-oblivious distances should be competitive with the geometric reference."""
        matrix = scrambled_kernel_matrix()
        err_geo = error_with(matrix, DistanceMetric.GEOMETRIC)
        err_angle = error_with(matrix, DistanceMetric.ANGLE)
        err_kernel = error_with(matrix, DistanceMetric.KERNEL)
        assert err_angle < 50 * err_geo + 1e-12
        assert err_kernel < 50 * err_geo + 1e-12

    def test_average_rank_lower_for_distance_based_orderings(self):
        """Good permutations concentrate energy: the adaptive ID needs lower rank (Fig. 7 #9)."""
        matrix = build_matrix("K02", N, seed=0)
        ranks = {}
        for metric in (DistanceMetric.KERNEL, DistanceMetric.RANDOM):
            budget = 0.1 if metric.defines_distance else 0.0
            config = config_for(metric, budget).replace(tolerance=1e-4, max_rank=64)
            compressed = compress(matrix, config)
            ranks[metric] = compressed.rank_summary()["mean"]
        assert ranks[DistanceMetric.KERNEL] <= ranks[DistanceMetric.RANDOM] + 1.0

    def test_graph_matrix_has_no_geometric_option(self):
        matrix = build_matrix("G03", 256, seed=0)
        with pytest.raises(Exception):
            compress(matrix, config_for(DistanceMetric.GEOMETRIC, 0.1))

    def test_angle_and_kernel_orderings_both_work_on_graph(self):
        matrix = build_matrix("G03", 256, seed=0)
        for metric in (DistanceMetric.ANGLE, DistanceMetric.KERNEL):
            err = error_with(matrix, metric)
            assert err < 1e-2
