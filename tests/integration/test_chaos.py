"""End-to-end chaos drill: the full pipeline survives a seeded fault plan.

One compress → store → serve run is executed twice over the same inputs:
once fault-free (the oracle), once under an armed :class:`FaultPlan` that

* kills the worker holding shard task 0 in every fresh fork pool
  (``shard.worker``) — the supervised pools re-fork and retry,
* fails the first store read with a transient ``EIO`` (``storage.read``)
  — the hardened reader backs off and retries,
* rejects the first spill-arena write with ``ENOSPC`` (``spill.write``)
  — the streaming plan degrades to heap buffers,
* flags the first routed request (``serving.shard``) — the router kills
  the picked shard mid-flight and fails over.

The contract: every stage's output under chaos is **bit-identical** to
the fault-free oracle, the counter ledger balances
(``faults_injected == faults_recovered + faults_degraded``), and the
whole drill finishes inside a hard wall-clock budget — recovery must be
bounded, not merely eventual.
"""

import time

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.api import CompressedOperator, Session
from repro.core.sharding import fork_available
from repro.faults import FaultPlan, match, nth_call
from repro.obs import counters
from repro.serving import BatchPolicy, ShardRouter

from ..conftest import make_gaussian_kernel_matrix

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires the fork start method")

N = 192

#: Sharded everywhere, cached blocks (the store must cold-start serving),
#: tight supervision so injected kills are detected in seconds.
CONFIG = dict(
    leaf_size=16, max_rank=8, adaptive_rank=False, budget=0.2,
    neighbors=8, num_neighbor_trees=3, seed=0,
    neighbor_backend="sharded", neighbor_workers=2,
    compression_backend="sharded", compression_workers=2,
    shard_retries=2, shard_task_timeout_s=2.0,
)

#: Tiny workspace budget so the mmap-resident streamed engine must spill —
#: the ``spill.write`` fault then hits a real allocation.
CHUNK_BYTES = 2048


def _pipeline(matrix, w, store_dir):
    """compress → save → mmap cold-start → streamed matvec → routed matvec."""
    op = Session(matrix, GOFMMConfig(**CONFIG)).compress()
    op.save(store_dir)
    reopened = CompressedOperator.open(
        store_dir, resident="mmap", streaming_chunk_bytes=CHUNK_BYTES
    )
    plan = reopened.compressed.streaming_plan()
    streamed = reopened.apply(w, engine="streamed")
    router = ShardRouter(
        num_shards=2,
        policy=BatchPolicy(max_batch=8, max_wait_ms=2.0, max_queue=512),
    )
    router.register("kernel", store=store_dir)
    with router:
        routed = router.matvec("kernel", w[:, 0], timeout=30)
    return {"direct": op.apply(w), "streamed": streamed, "routed": routed, "plan": plan}


@needs_fork
class TestChaosPipeline:
    def test_pipeline_survives_seeded_faults_bit_identically(self, tmp_path):
        matrix = make_gaussian_kernel_matrix(n=N, d=3, bandwidth=1.2, seed=0)
        w = np.random.default_rng(11).standard_normal((N, 2))

        counters.reset()
        oracle = _pipeline(matrix, w, tmp_path / "clean")
        assert oracle["plan"].spills  # the chunk budget really forces spilling
        assert counters.get("faults_injected") == 0  # unarmed runs inject nothing

        plan = FaultPlan(seed=7)
        plan.inject("shard.worker", kill=True, times=None,
                    trigger=match(task=0, attempt=0))
        plan.inject("storage.read", trigger=nth_call(1))   # default: transient EIO
        plan.inject("spill.write", trigger=nth_call(1))    # default: ENOSPC
        plan.inject("serving.shard", trigger=nth_call(1))  # flag: router kills shard

        counters.reset()
        started = time.monotonic()
        with plan.armed():
            chaos = _pipeline(matrix, w, tmp_path / "chaos")
        elapsed = time.monotonic() - started

        # bit-identity at every stage: recovery may never change a result
        assert np.array_equal(chaos["direct"], oracle["direct"])
        assert np.array_equal(chaos["streamed"], oracle["streamed"])
        assert np.array_equal(chaos["routed"], oracle["routed"])

        # every scripted point actually fired ...
        injected = counters.get("faults_injected")
        recovered = counters.get("faults_recovered")
        degraded = counters.get("faults_degraded")
        assert plan.detected >= 1          # at least one worker kill was detected
        assert not chaos["plan"].spills    # ENOSPC degraded the plan to heap
        assert injected == plan.injected >= 4
        # ... and the ledger balances: nothing injected went unaccounted
        assert injected == recovered + degraded
        assert degraded >= 1 and recovered >= 3

        # recovery is bounded: retries + backoff, not hangs
        assert elapsed < 90.0
