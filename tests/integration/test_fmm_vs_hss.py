"""Integration tests for the FMM vs HSS comparison (Figure 6 behaviour)."""

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.config import DistanceMetric
from repro.core.accuracy import exact_relative_error
from repro.gofmm import compare_fmm_hss, compress_fmm, compress_hss, run
from repro.matrices import KernelMatrix, build_matrix
from repro.matrices.datasets import clustered_points
from repro.matrices.kernels import GaussianKernel

N = 512


def narrow_kernel_matrix(n=N, bandwidth=0.35, seed=0):
    """Narrow-bandwidth Gaussian kernel: near-field heavy, the case where FMM shines."""
    points = clustered_points(n, ambient_dim=6, intrinsic_dim=3, clusters=4, seed=seed)
    return KernelMatrix(points, GaussianKernel(bandwidth=bandwidth), regularization=1e-8)


COMMON = dict(
    leaf_size=64, max_rank=24, tolerance=1e-10, neighbors=16,
    num_neighbor_trees=5, distance=DistanceMetric.ANGLE, seed=0,
)


class TestFMMvsHSS:
    def test_fmm_more_accurate_than_hss_at_same_rank(self):
        matrix = narrow_kernel_matrix()
        hss = compress_hss(**COMMON, matrix=matrix)
        fmm = compress_fmm(matrix, budget=0.25, **COMMON)
        err_hss = exact_relative_error(hss, matrix, num_rhs=4)
        err_fmm = exact_relative_error(fmm, matrix, num_rhs=4)
        assert err_fmm < err_hss

    def test_fmm_with_low_rank_beats_hss_with_higher_rank(self):
        """The headline of Figure 6: small rank + 3% budget can beat a larger-rank HSS."""
        matrix = narrow_kernel_matrix()
        fmm_small = compress_fmm(matrix, budget=0.25, **{**COMMON, "max_rank": 16})
        hss_large = compress_hss(matrix=matrix, **{**COMMON, "max_rank": 48})
        err_fmm = exact_relative_error(fmm_small, matrix, num_rhs=4)
        err_hss = exact_relative_error(hss_large, matrix, num_rhs=4)
        assert err_fmm < 5 * err_hss  # comparable or better despite 3x smaller rank

    def test_budget_monotonically_improves_accuracy(self):
        matrix = narrow_kernel_matrix()
        errors = []
        for budget in (0.0, 0.2, 0.6):
            cm = compress_fmm(matrix, budget=budget, **COMMON)
            errors.append(exact_relative_error(cm, matrix, num_rhs=4))
        assert errors[1] <= errors[0] + 1e-12
        assert errors[2] <= errors[1] + 1e-12

    def test_full_budget_is_nearly_exact(self):
        """budget=1 lets every neighbor-voted leaf pair be evaluated directly.

        The near field is still neighbor-driven (pairs no index ever votes
        for stay low-rank), so the error is not exactly zero — but it should
        be far below the rank-truncation error of the HSS variant.
        """
        matrix = narrow_kernel_matrix(n=256)
        full = compress_fmm(matrix, budget=1.0, **COMMON)
        hss = compress_hss(matrix=matrix, **COMMON)
        err_full = exact_relative_error(full, matrix, num_rhs=4)
        err_hss = exact_relative_error(hss, matrix, num_rhs=4)
        assert err_full < 1e-4
        assert err_full < err_hss

    def test_hss_storage_smaller_than_fmm(self):
        matrix = narrow_kernel_matrix()
        hss = compress_hss(matrix=matrix, **COMMON)
        fmm = compress_fmm(matrix, budget=0.5, **COMMON)
        assert hss.storage_report()["near_blocks"] <= fmm.storage_report()["near_blocks"]

    def test_compare_helper(self):
        matrix = narrow_kernel_matrix()
        results = compare_fmm_hss(matrix, budget=0.25, num_rhs=8, **COMMON)
        assert set(results) == {"hss", "fmm"}
        assert results["fmm"].epsilon2 <= results["hss"].epsilon2 * 1.5
        for res in results.values():
            assert res.compression_seconds > 0
            assert res.evaluation_seconds > 0

    def test_run_result_summary_strings(self):
        matrix = build_matrix("K02", 256)
        result = run(matrix, GOFMMConfig(leaf_size=64, max_rank=64, budget=0.1, seed=0), num_rhs=4)
        text = result.summary()
        assert "eps2=" in text and "comp=" in text
