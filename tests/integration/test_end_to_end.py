"""End-to-end compression of the paper's testbed matrices (laptop scale).

These are the integration analogues of Figure 5: compress each registry
matrix with the angle distance and check that the error behaves as the
paper reports — most matrices compress well, the pseudo-spectral family
(K15–K17) and the narrow-bandwidth Gaussian (K06) do not compress at
moderate rank.
"""

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.config import DistanceMetric
from repro.core.accuracy import exact_relative_error
from repro.matrices import build_matrix, matrix_info

N = 512
GOOD_MATRICES = ["K02", "K03", "K04", "K05", "K07", "K08", "K11", "K12", "K18", "G01", "G02", "G03", "G04", "G05", "covtype", "mnist"]
HARD_MATRICES = ["K15", "K16", "K17"]


def angle_config(budget=0.15, rank=96, tol=1e-6):
    return GOFMMConfig(
        leaf_size=64,
        max_rank=rank,
        tolerance=tol,
        neighbors=16,
        budget=budget,
        num_neighbor_trees=5,
        distance=DistanceMetric.ANGLE,
        seed=0,
    )


@pytest.mark.parametrize("name", GOOD_MATRICES)
def test_compressible_matrices_reach_low_error(name):
    matrix = build_matrix(name, N, seed=0)
    compressed = compress(matrix, angle_config())
    eps2 = exact_relative_error(compressed, matrix, num_rhs=4)
    assert eps2 < 5e-2, f"{name}: eps2={eps2:.2e}"
    # The representation must actually be hierarchical, not dense fallback.
    assert compressed.rank_summary()["max"] <= 96


@pytest.mark.parametrize("name", HARD_MATRICES)
def test_high_rank_matrices_do_not_compress_at_low_rank(name):
    """K15–K17 have high off-diagonal rank: at small s the error must stay large.

    This mirrors the red-labelled matrices of Figure 5 — a useful guard that
    our generators really produce hard instances rather than trivially
    compressible ones.
    """
    matrix = build_matrix(name, N, seed=0)
    compressed = compress(matrix, angle_config(rank=32, tol=1e-10))
    eps2 = exact_relative_error(compressed, matrix, num_rhs=4)
    assert eps2 > 1e-3, f"{name} unexpectedly compressed to eps2={eps2:.2e} at rank 32"


def test_symmetry_of_compressed_operator():
    matrix = build_matrix("K04", N, seed=0)
    compressed = compress(matrix, angle_config())
    dense = compressed.to_dense()
    asym = np.linalg.norm(dense - dense.T) / np.linalg.norm(dense)
    assert asym < 1e-12


def test_compression_report_phases_present():
    matrix = build_matrix("K02", N, seed=0)
    compressed, report = compress(matrix, angle_config(), return_report=True)
    for phase in ("neighbors", "tree", "lists", "skeletonization", "caching"):
        assert phase in report.phase_seconds
    assert report.entry_evaluations > 0
    # At this tiny N the constant factors (neighbor search, caching) dominate;
    # the asymptotic sub-quadratic behaviour is covered by
    # test_entry_evaluation_count_subquadratic which measures growth with N.
    assert report.entry_evaluations < 4 * N * N
    assert report.num_leaves == len(compressed.tree.leaves)


def test_entry_evaluation_count_subquadratic():
    """GOFMM sampling cost grows roughly like O(N log N · s), far below N²."""
    evaluations = []
    for n in (256, 512):
        matrix = build_matrix("K04", n, seed=0)
        config = angle_config(rank=32, budget=0.1)
        compress(matrix, config)
        evaluations.append(matrix.entry_evaluations)
    growth = evaluations[1] / evaluations[0]
    assert growth < 3.5, f"entry evaluations grew by {growth:.1f}x when N doubled"


def test_tolerance_controls_error_monotonically():
    matrix = build_matrix("K02", N, seed=0)
    errors = []
    for tol in (1e-1, 1e-3, 1e-7):
        compressed = compress(matrix, angle_config(tol=tol, rank=128))
        errors.append(exact_relative_error(compressed, matrix, num_rhs=4))
    assert errors[2] <= errors[0] + 1e-12
    assert errors[2] <= 1e-3


@pytest.mark.parametrize("metric", [DistanceMetric.ANGLE, DistanceMetric.KERNEL, DistanceMetric.GEOMETRIC])
def test_all_distances_work_on_kernel_matrix(metric):
    matrix = build_matrix("K04", N, seed=0)
    config = angle_config().replace(distance=metric)
    compressed = compress(matrix, config)
    eps2 = exact_relative_error(compressed, matrix, num_rhs=4)
    assert eps2 < 5e-2


def test_geometry_oblivious_on_graph_matrix_matches_paper_story():
    """Angle distance compresses G03 well; lexicographic ordering is much worse (Fig. 7 #12)."""
    matrix = build_matrix("G03", N, seed=0)
    angle = compress(matrix, angle_config(rank=64, budget=0.1))
    lex = compress(matrix, angle_config(rank=64, budget=0.0).replace(distance=DistanceMetric.LEXICOGRAPHIC))
    err_angle = exact_relative_error(angle, matrix, num_rhs=4)
    err_lex = exact_relative_error(lex, matrix, num_rhs=4)
    assert err_angle < err_lex
    assert err_angle < 1e-3
