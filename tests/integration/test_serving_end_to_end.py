"""Integration test: the serving runtime under concurrent mixed load.

One real compressed operator behind a :class:`MatvecServer`, 64 concurrent
requests (matvecs + CG solves) fired from client threads, verified for
accuracy against dense ground truth, with a hot reload in the middle and a
clean shutdown at the end — the serving analogue of the end-to-end
pipeline test.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.api import Session
from repro.serving import BatchPolicy, MatvecServer, ServingClient

from ..conftest import make_gaussian_kernel_matrix

N = 320
SHIFT = 1.0


@pytest.fixture(scope="module")
def setup():
    matrix = make_gaussian_kernel_matrix(n=N, d=3, bandwidth=1.4, seed=0)
    config = GOFMMConfig(
        leaf_size=40, max_rank=24, tolerance=1e-8, neighbors=8,
        budget=0.2, num_neighbor_trees=3, distance="kernel", seed=0,
    )
    operator = Session(matrix, config).compress()
    dense = matrix.to_dense()
    return matrix, config, operator, dense


def test_serving_end_to_end(setup, tmp_path):
    matrix, config, operator, dense = setup
    artifact_path = tmp_path / "artifacts.npz"
    Session(matrix, config).save_artifacts(artifact_path)

    server = MatvecServer(policy=BatchPolicy(max_batch=16, max_wait_ms=2.0, max_queue=256))
    server.register("kernel", matrix=matrix, config=config, artifacts=artifact_path)
    client = ServingClient(server)

    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((64, N))
    is_solve = np.arange(64) % 4 == 3  # every 4th request is a solve

    def fire(i: int):
        if is_solve[i]:
            return client.solve("kernel", vectors[i], shift=SHIFT, tolerance=1e-9, timeout=120)
        return client.matvec("kernel", vectors[i], timeout=120)

    with server:
        with ThreadPoolExecutor(max_workers=32) as pool:
            futures = [pool.submit(fire, i) for i in range(64)]
            # hot reload mid-traffic: rewrite the artifact file and poll
            Session(matrix, config).save_artifacts(artifact_path)
            server.poll_reloads()
            responses = [f.result(timeout=120) for f in futures]
        stats = server.stats()["kernel"]

    # every request answered, batching actually happened
    assert stats["responses"] == 64
    assert stats["errors"] == 0
    assert stats["batches"] < 64
    assert stats["batch_occupancy"] > 1.0
    assert stats["reloads"] == 1

    eps2 = operator.relative_error()
    for i in range(64):
        if is_solve[i]:
            result = responses[i]
            assert result.converged
            # true residual against the *compressed* operator it solved
            residual = np.asarray(operator.apply(result.solution)) + SHIFT * result.solution - vectors[i]
            assert np.linalg.norm(residual) <= 1e-8 * np.linalg.norm(vectors[i])
        else:
            # compression-level agreement with the dense ground truth
            exact = dense @ vectors[i]
            rel = np.linalg.norm(responses[i] - exact) / np.linalg.norm(exact)
            assert rel <= max(10 * eps2, 1e-6)

    # shutdown is clean: no threads left serving, resubmission fails clearly
    from repro.errors import ServingError

    with pytest.raises(ServingError):
        server.submit("kernel", vectors[0])


def test_serving_with_shared_worker_pool(setup):
    """num_workers > 1: evaluations run on the shared WorkerPool, still accurate."""
    matrix, config, operator, dense = setup
    server = MatvecServer(
        policy=BatchPolicy(max_batch=8, max_wait_ms=2.0), num_workers=2
    )
    server.register("kernel", operator)
    rng = np.random.default_rng(1)
    vectors = rng.standard_normal((16, N))
    with server:
        futures = [server.submit("kernel", v) for v in vectors]
        responses = [f.result(timeout=120) for f in futures]
    for v, u in zip(vectors, responses):
        assert np.allclose(u, operator.apply(v), atol=1e-9)
