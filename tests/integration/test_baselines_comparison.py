"""Integration tests comparing GOFMM against the baseline codes (Tables 3 & 4 behaviour)."""

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.baselines import compress_askit, compress_hodlr, compress_hss_baseline
from repro.config import DistanceMetric
from repro.core.accuracy import exact_relative_error
from repro.matrices import KernelMatrix, build_matrix
from repro.matrices.datasets import clustered_points
from repro.matrices.kernels import GaussianKernel

N = 384


def scrambled_kernel(n=N, bandwidth=0.8, seed=0):
    points = clustered_points(n, ambient_dim=6, intrinsic_dim=3, clusters=4, seed=seed)
    points = points[np.random.default_rng(seed + 1).permutation(n)]
    return KernelMatrix(points, GaussianKernel(bandwidth=bandwidth), regularization=1e-8)


def gofmm_error(matrix, rank=32, budget=0.15):
    config = GOFMMConfig(
        leaf_size=48, max_rank=rank, tolerance=1e-9, neighbors=16,
        budget=budget, num_neighbor_trees=5, distance=DistanceMetric.ANGLE, seed=0,
    )
    compressed = compress(matrix, config)
    return exact_relative_error(compressed, matrix, num_rhs=4), matrix.entry_evaluations


class TestAgainstLexicographicBaselines:
    def test_gofmm_beats_hss_baseline_on_scrambled_kernel(self):
        """Table 3's K04 story: without a permutation, lexicographic HSS needs far more rank."""
        matrix = scrambled_kernel()
        gofmm_err, _ = gofmm_error(matrix, rank=32)
        hss = compress_hss_baseline(matrix, leaf_size=48, max_rank=32, tolerance=1e-9)
        dense = matrix.to_dense()
        w = np.random.default_rng(0).standard_normal((N, 4))
        hss_err = np.linalg.norm(hss.matvec(w) - dense @ w) / np.linalg.norm(dense @ w)
        assert gofmm_err < hss_err

    def test_gofmm_competitive_with_hodlr_on_grid_matrix(self):
        """On K02 (grid order friendly to HODLR) both reach small error; GOFMM touches fewer entries."""
        matrix_a = build_matrix("K02", N, seed=0)
        gofmm_err, gofmm_entries = gofmm_error(matrix_a, rank=64, budget=0.1)

        matrix_b = build_matrix("K02", N, seed=0)
        hodlr = compress_hodlr(matrix_b, leaf_size=48, max_rank=64, tolerance=1e-9)
        dense = matrix_b.to_dense()
        w = np.random.default_rng(0).standard_normal((N, 4))
        hodlr_err = np.linalg.norm(hodlr.matvec(w) - dense @ w) / np.linalg.norm(dense @ w)

        assert gofmm_err < 1e-2
        assert hodlr_err < 1e-2

    def test_hodlr_degrades_on_scrambled_kernel_at_fixed_rank(self):
        matrix = scrambled_kernel()
        dense = matrix.to_dense()
        w = np.random.default_rng(1).standard_normal((N, 4))
        hodlr = compress_hodlr(matrix, leaf_size=48, max_rank=16, tolerance=1e-12)
        hodlr_err = np.linalg.norm(hodlr.matvec(w) - dense @ w) / np.linalg.norm(dense @ w)
        gofmm_err, _ = gofmm_error(scrambled_kernel(), rank=16, budget=0.2)
        assert gofmm_err < hodlr_err


class TestAgainstASKIT:
    def test_similar_accuracy_with_geometric_information(self):
        """Table 4: with points available, GOFMM (Gram distances) matches ASKIT (geometric)."""
        matrix = scrambled_kernel()
        gofmm_err, _ = gofmm_error(matrix, rank=32, budget=0.2)
        askit = compress_askit(matrix, leaf_size=48, max_rank=32, tolerance=1e-9, neighbors=16)
        askit_err = exact_relative_error(askit.compressed, matrix, num_rhs=4)
        # ASKIT's near field is κ-driven (larger at this scale), so it can be
        # somewhat more accurate; "similar" here means within a modest factor
        # in either direction, not orders of magnitude apart.
        assert gofmm_err < 25 * askit_err + 1e-10
        assert askit_err < 25 * gofmm_err + 1e-10

    def test_gofmm_handles_matrices_askit_cannot(self):
        matrix = build_matrix("G03", 256, seed=0)
        with pytest.raises(Exception):
            compress_askit(matrix, leaf_size=32, max_rank=32)
        err, _ = gofmm_error(matrix, rank=48, budget=0.1)
        assert err < 1e-2
