"""Shared fixtures for the test suite.

Fixtures keep the problem sizes small (N ≤ 512) so the whole suite runs in
a couple of minutes while still exercising multi-level trees (several
levels below the root) and every code path of the compression pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.matrices import DenseSPD, KernelMatrix
from repro.matrices.kernels import GaussianKernel


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_gaussian_kernel_matrix(n: int = 256, d: int = 3, bandwidth: float = 1.0, seed: int = 0) -> KernelMatrix:
    """Well-conditioned Gaussian kernel matrix on clustered points."""
    gen = np.random.default_rng(seed)
    centers = gen.standard_normal((4, d)) * 3.0
    points = np.vstack([c + gen.standard_normal((n // 4 + 1, d)) for c in centers])[:n]
    return KernelMatrix(points, GaussianKernel(bandwidth=bandwidth), regularization=1e-8, name="test-gaussian")


def make_random_spd(n: int = 64, seed: int = 0, decay: float = 2.0) -> DenseSPD:
    """Random SPD matrix with controllable spectral decay (no geometric structure)."""
    gen = np.random.default_rng(seed)
    q, _ = np.linalg.qr(gen.standard_normal((n, n)))
    eigenvalues = np.array([1.0 / (1 + k) ** decay for k in range(n)])
    a = (q * eigenvalues) @ q.T
    a = 0.5 * (a + a.T) + 1e-10 * np.eye(n)
    return DenseSPD(a, name="random-spd")


@pytest.fixture(scope="session")
def kernel_matrix() -> KernelMatrix:
    return make_gaussian_kernel_matrix(n=256, d=3, bandwidth=1.5, seed=0)


@pytest.fixture(scope="session")
def small_kernel_matrix() -> KernelMatrix:
    return make_gaussian_kernel_matrix(n=96, d=2, bandwidth=1.0, seed=1)


@pytest.fixture(scope="session")
def random_spd_matrix() -> DenseSPD:
    return make_random_spd(n=96, seed=2)


@pytest.fixture()
def small_config() -> GOFMMConfig:
    """Configuration sized for N≈100–300 test problems (multi-level tree)."""
    return GOFMMConfig(
        leaf_size=32,
        max_rank=32,
        tolerance=1e-7,
        neighbors=8,
        budget=0.25,
        num_neighbor_trees=4,
        seed=0,
    )


@pytest.fixture()
def hss_small_config(small_config) -> GOFMMConfig:
    return small_config.replace(budget=0.0)
