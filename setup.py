"""Setuptools shim so `pip install -e .` works without network access.

The environment has no `wheel` package, so the modern PEP 517/660 editable
path (which builds a wheel) is unavailable; this shim lets pip fall back to
the legacy `setup.py develop` editable install.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
