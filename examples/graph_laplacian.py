#!/usr/bin/env python
"""Geometry-oblivious compression of an inverse graph Laplacian.

This is the headline use case of the paper: a dense SPD matrix that has
**no point coordinates** (the inverse Laplacian of a graph), so geometric
FMM codes cannot even build their tree.  GOFMM permutes the matrix with the
Gram angle distance computed purely from matrix entries and still finds a
hierarchical low-rank plus sparse structure.

The script compares three orderings on the same matrix (the Figure 7
experiment, restricted to the graph case):

* lexicographic (what HODLR/STRUMPACK would use) — HSS only,
* random — HSS only,
* Gram angle distance — FMM with neighbor-driven sparse correction.

Run:  python examples/graph_laplacian.py [N]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import GOFMMConfig, compress
from repro.core.accuracy import relative_error
from repro.matrices import build_matrix
from repro.reporting import format_table


def run_ordering(matrix, distance: str, budget: float, n: int):
    config = GOFMMConfig(
        leaf_size=64,
        max_rank=64,
        tolerance=1e-7,
        neighbors=16,
        budget=budget,
        distance=distance,
        seed=0,
    )
    compressed, report = compress(matrix, config, return_report=True)
    eps2 = relative_error(compressed, matrix, num_rhs=8, num_sample_rows=min(100, n))
    return {
        "ordering": distance,
        "budget": budget,
        "eps2": eps2,
        "avg rank": compressed.rank_summary()["mean"],
        "comp [s]": report.total_seconds,
        "near pairs": compressed.lists.total_near_pairs(),
    }


def main(n: int = 2048) -> None:
    # G03: inverse Laplacian of a random geometric graph — but note GOFMM never
    # sees the geometry, only matrix entries.
    matrix = build_matrix("G03", n, seed=0)
    assert matrix.coordinates is None, "the graph matrix deliberately carries no coordinates"

    rows = []
    for distance, budget in [("lexicographic", 0.0), ("random", 0.0), ("angle", 0.05), ("kernel", 0.05)]:
        rows.append(run_ordering(matrix, distance, budget, n))

    print(format_table(
        ["ordering", "budget", "eps2", "avg rank", "comp [s]", "near pairs"],
        [[r["ordering"], r["budget"], r["eps2"], r["avg rank"], r["comp [s]"], r["near pairs"]] for r in rows],
        title=f"Inverse graph Laplacian (G03-like), N={n}: ordering comparison",
    ))
    print()
    print("The Gram-distance orderings should reach (much) lower error than the")
    print("metric-free orderings at the same rank — the paper's Figure 7 / #12 story.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
