#!/usr/bin/env python
"""Quickstart: compress a dense SPD kernel matrix and use the fast matvec.

This is the minimal end-to-end GOFMM workflow:

1. build (or supply) an SPD matrix through the entry-evaluation interface,
2. choose the compression parameters (leaf size m, rank s, tolerance τ,
   neighbors κ, budget),
3. compress,
4. multiply with the compressed operator and check the ε2 error.

Run:  python examples/quickstart.py [N]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import GOFMMConfig, compress
from repro.matrices import KernelMatrix
from repro.matrices.datasets import clustered_points
from repro.matrices.kernels import GaussianKernel
from repro.reporting import format_table


def main(n: int = 2048) -> None:
    rng = np.random.default_rng(0)

    # --- 1. an SPD matrix: Gaussian kernel on clustered 6-D points ---------
    points = clustered_points(n, ambient_dim=6, intrinsic_dim=3, clusters=4, seed=0)
    matrix = KernelMatrix(points, GaussianKernel(bandwidth=1.0), regularization=1e-8, name="quickstart")

    # --- 2. parameters ------------------------------------------------------
    config = GOFMMConfig(
        leaf_size=128,       # m
        max_rank=128,        # s
        tolerance=1e-5,      # tau
        neighbors=16,        # kappa
        budget=0.05,         # 5% direct evaluations (FMM); 0.0 would give HSS
        distance="angle",    # geometry-oblivious Gram angle distance
        seed=0,
    )

    # --- 3. compress ---------------------------------------------------------
    compressed, report = compress(matrix, config, return_report=True)
    print(report.summary())

    # --- 4. fast matvec and accuracy ----------------------------------------
    w = rng.standard_normal((n, 8))
    u = compressed.matvec(w)          # approx K @ w
    eps2 = compressed.relative_error(num_rhs=8)

    storage = compressed.storage_report()
    rows = [
        ["N", n],
        ["epsilon2 (sampled)", eps2],
        ["average skeleton rank", compressed.rank_summary()["mean"]],
        ["compression time [s]", report.total_seconds],
        ["entry evaluations", report.entry_evaluations],
        ["storage vs dense", f"{storage['compression_ratio']:.1f}x smaller"],
        ["output shape", str(u.shape)],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="GOFMM quickstart"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
