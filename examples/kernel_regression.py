#!/usr/bin/env python
"""Kernel ridge regression accelerated by GOFMM-compressed matvecs.

The machine-learning motivation of the paper: kernel methods need repeated
products with a dense N×N Gaussian-kernel matrix (here inside conjugate
gradients for kernel ridge regression).  Compressing the matrix once makes
every CG iteration O(N) instead of O(N²).

The script:

1. generates a COVTYPE-like synthetic dataset (54 features) and a smooth
   regression target,
2. compresses the Gaussian kernel matrix with GOFMM,
3. solves (K + λI) α = y with conjugate gradients using (a) exact dense
   products and (b) GOFMM products,
4. compares solutions, fit quality, and time per matvec.

Run:  python examples/kernel_regression.py [N]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import GOFMMConfig, compress
from repro.matrices import KernelMatrix
from repro.matrices.datasets import covtype_like
from repro.matrices.kernels import GaussianKernel
from repro.reporting import format_table


def conjugate_gradient(matvec, b, shift, max_iter=200, tol=1e-8):
    """CG for (K + shift I) x = b given only a matvec with K."""
    x = np.zeros_like(b)
    r = b - (matvec(x) + shift * x)
    p = r.copy()
    rs = float(r @ r)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        kp = matvec(p) + shift * p
        alpha = rs / float(p @ kp)
        x += alpha * p
        r -= alpha * kp
        rs_new = float(r @ r)
        if np.sqrt(rs_new) < tol * np.linalg.norm(b):
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, iterations


def main(n: int = 2048) -> None:
    rng = np.random.default_rng(0)
    bandwidth = 3.0
    ridge = 1e-2

    points = covtype_like(n, seed=0)
    # Smooth target: distance to a random hyperplane plus noise.
    direction = rng.standard_normal(points.shape[1])
    y = np.tanh(points @ direction / np.sqrt(points.shape[1])) + 0.05 * rng.standard_normal(n)

    matrix = KernelMatrix(points, GaussianKernel(bandwidth=bandwidth), regularization=0.0, name="covtype-krr")

    config = GOFMMConfig(
        leaf_size=128, max_rank=128, tolerance=1e-5, neighbors=16,
        budget=0.05, distance="angle", seed=0,
    )
    t0 = time.perf_counter()
    compressed, report = compress(matrix, config, return_report=True)
    compress_time = time.perf_counter() - t0

    dense = matrix.to_dense()

    t0 = time.perf_counter()
    alpha_exact, iters_exact = conjugate_gradient(lambda v: dense @ v, y, ridge)
    time_exact = time.perf_counter() - t0

    t0 = time.perf_counter()
    alpha_fast, iters_fast = conjugate_gradient(lambda v: compressed.matvec(v), y, ridge)
    time_fast = time.perf_counter() - t0

    fit_exact = dense @ alpha_exact
    fit_fast = dense @ alpha_fast
    coeff_diff = np.linalg.norm(alpha_fast - alpha_exact) / np.linalg.norm(alpha_exact)
    fit_diff = np.linalg.norm(fit_fast - fit_exact) / np.linalg.norm(fit_exact)

    rows = [
        ["N / features", f"{n} / {points.shape[1]}"],
        ["kernel eps2", compressed.relative_error(num_rhs=4)],
        ["compression time [s]", compress_time],
        ["CG iterations (dense / GOFMM)", f"{iters_exact} / {iters_fast}"],
        ["CG solve time dense [s]", time_exact],
        ["CG solve time GOFMM [s]", time_fast],
        ["relative coefficient difference", coeff_diff],
        ["relative fit difference", fit_diff],
        ["training RMSE (GOFMM solution)", float(np.sqrt(np.mean((fit_fast - y) ** 2)))],
    ]
    print(format_table(["quantity", "value"], rows, title="Kernel ridge regression with GOFMM matvecs"))
    print()
    print(report.summary())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
