#!/usr/bin/env python
"""Staged sessions: a warm parameter sweep plus SciPy solver interop.

The staged session API (``repro.api``) keeps the compression pipeline's
stage artifacts — partition, ANN table, interaction lists, skeletons,
blocks, plan — individually cached, so a parameter sweep rebuilds only what
each change invalidates:

1. create a :class:`repro.api.Session` and compress once (cold),
2. sweep ``tolerance`` / ``budget`` via :meth:`Session.recompress` — every
   warm point reuses the tree + ANN artifacts,
3. use the resulting :class:`repro.api.CompressedOperator` directly with
   ``scipy.sparse.linalg`` (it *is* a ``LinearOperator``) and with the
   built-in block-Jacobi preconditioned ``solve``,
4. attach a second kernel matrix to the same session: an operator family
   on one shared partition.

Run:  python examples/session_sweep.py [N]    (default N=2048; CI uses 512)
"""

from __future__ import annotations

import sys

import numpy as np
import scipy.sparse.linalg as sla

from repro import GOFMMConfig
from repro.api import Session
from repro.matrices import KernelMatrix
from repro.matrices.datasets import clustered_points
from repro.matrices.kernels import GaussianKernel
from repro.reporting import format_table

SWEEP = [
    dict(tolerance=1e-2, budget=0.01),
    dict(tolerance=1e-3, budget=0.03),
    dict(tolerance=1e-5, budget=0.05),
    dict(tolerance=1e-7, budget=0.10),
]


def main(n: int = 2048) -> None:
    rng = np.random.default_rng(0)
    points = clustered_points(n, ambient_dim=6, intrinsic_dim=3, clusters=4, seed=0)
    matrix = KernelMatrix(points, GaussianKernel(bandwidth=1.0), regularization=1e-6, name="session-sweep")

    config = GOFMMConfig(
        leaf_size=128, max_rank=128, neighbors=16, distance="angle", seed=0, **SWEEP[0]
    )

    # --- 1+2. one session, many configurations ------------------------------
    session = Session(matrix, config)
    rows = []
    for overrides in SWEEP:
        operator = session.recompress(**overrides)
        report = operator.report
        rows.append([
            f"{session.config.tolerance:g}",
            f"{session.config.budget:.0%}",
            operator.relative_error(num_rhs=8),
            f"{operator.rank_summary()['mean']:.1f}",
            f"{report.total_seconds:.3f}",
            ",".join(report.reused_phases) or "(cold)",
        ])
    print(format_table(
        ["tau", "budget", "eps2", "avg rank", "rebuild [s]", "reused stages"],
        rows,
        title=f"Warm parameter sweep (N={n}): tree + ANN built once",
    ))
    print(f"stage build counts: {dict(session.stage_builds)}")

    # --- 3. SciPy interop: the operator IS a LinearOperator -----------------
    operator = session.recompress(tolerance=1e-5, budget=0.05)
    b = rng.standard_normal(n)

    shifted = sla.LinearOperator(  # regularized system (K + I) x = b
        shape=operator.shape, dtype=operator.dtype,
        matvec=lambda v: operator.matvec(v) + np.asarray(v).reshape(-1),
    )
    x_cg, info = sla.cg(shifted, b, rtol=1e-8, maxiter=500)
    assert info == 0, f"scipy cg did not converge (info={info})"

    result = operator.solve(b, shift=1.0, tolerance=1e-8)  # built-in block-Jacobi PCG
    print()
    print(f"scipy.sparse.linalg.cg:   residual "
          f"{np.linalg.norm(shifted.matvec(x_cg) - b) / np.linalg.norm(b):.2e}")
    print(f"operator.solve (PCG):     {result.iterations} iterations, "
          f"converged={result.converged}, max |x_cg - x_pcg| = "
          f"{np.max(np.abs(x_cg - result.solution)):.2e}")

    # --- 4. an operator family on one shared partition ----------------------
    wide = KernelMatrix(points, GaussianKernel(bandwidth=2.0), regularization=1e-6, name="wide-kernel")
    sibling = session.attach(wide)
    wide_op = sibling.compress()
    print()
    print(f"attached bandwidth-2.0 kernel: eps2={wide_op.relative_error(num_rhs=8):.2e}, "
          f"stages built={list(sibling.last_built)} (partition/ANN shared)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
