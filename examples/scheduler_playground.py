#!/usr/bin/env python
"""Explore the task runtime: DAGs, schedulers, and machine models.

The second contribution of the paper is the shared-memory runtime that
replaces level-by-level traversals with dependency-driven out-of-order
scheduling (dynamic HEFT with job stealing), including heterogeneous
CPU+GPU execution.  This example:

1. compresses a kernel matrix,
2. builds the evaluation task DAG by symbolic traversal,
3. simulates the three scheduling policies of Figure 4 on the paper's four
   machine models, printing makespan / utilization / achieved GFLOPS,
4. runs the *real* threaded executor and verifies it matches the sequential
   result bit-for-bit.

Run:  python examples/scheduler_playground.py [N]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import GOFMMConfig, compress
from repro.matrices import build_matrix
from repro.reporting import format_table
from repro.runtime import (
    CostModel,
    build_evaluation_dag,
    arm_4,
    haswell_24,
    haswell_p100,
    knl_68,
    parallel_evaluate,
    simulate_all_schedulers,
)


def main(n: int = 2048) -> None:
    matrix = build_matrix("covtype", n, seed=0)
    config = GOFMMConfig(
        leaf_size=128, max_rank=96, tolerance=1e-5, neighbors=16,
        budget=0.08, distance="angle", seed=0,
    )
    compressed = compress(matrix, config)

    num_rhs = 64
    cost = CostModel(
        leaf_size=config.leaf_size,
        rank=max(1, int(compressed.rank_summary()["mean"])),
        num_rhs=num_rhs,
        point_dim=54,
    )
    dag = build_evaluation_dag(compressed.tree, cost)
    print(f"evaluation DAG: {len(dag)} tasks, {dag.total_flops():.3g} FLOPs, "
          f"{len(dag.tasks_of_kind('S2S'))} S2S tasks\n")

    rows = []
    for machine in (haswell_24(), knl_68(), arm_4(), haswell_p100()):
        results = simulate_all_schedulers(dag, machine)
        for name, res in results.items():
            rows.append([
                machine.name,
                name,
                res.makespan,
                res.utilization,
                res.gflops,
                res.efficiency_vs_peak(machine),
            ])
    print(format_table(
        ["machine", "scheduler", "makespan [s]", "utilization", "GFLOPS", "frac of peak"],
        rows,
        title="Simulated evaluation-phase schedules (Figure 4 / Table 5 analogue)",
    ))

    # Real out-of-order execution on a thread pool: must equal the sequential result.
    w = np.random.default_rng(0).standard_normal((compressed.n, 8))
    sequential = compressed.matvec(w)
    threaded = parallel_evaluate(compressed, w, num_workers=4)
    print(f"\nthreaded executor matches sequential evaluation: {np.allclose(threaded, sequential, atol=1e-10)}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
