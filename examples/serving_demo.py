"""Serving demo: micro-batched matvec/solve traffic against named operators.

Walks through the full serving workflow:

1. compress an operator and persist its matrix-light artifacts,
2. register it with a :class:`MatvecServer` twice — once in-process, once
   cold-started from the artifact file (with hot reload armed),
3. fire concurrent matvec and solve requests through the sync client and
   the asyncio front end,
4. trigger a hot reload mid-traffic,
5. print the metrics snapshot (throughput, p50/p99 latency, batch occupancy).

Run::

    PYTHONPATH=src python examples/serving_demo.py [n]
"""

import asyncio
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro import GOFMMConfig
from repro.api import Session
from repro.matrices import build_matrix
from repro.serving import AsyncServingClient, BatchPolicy, MatvecServer, ServingClient

n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
config = GOFMMConfig(leaf_size=64, max_rank=32, tolerance=1e-6, neighbors=8, budget=0.05)
matrix = build_matrix("K05", n, seed=0)

# 1. compress once, persist the matrix-light artifacts (tree + ANN + lists)
workdir = Path(tempfile.mkdtemp(prefix="serving-demo-"))
artifacts = workdir / "artifacts.npz"
session = Session(matrix, config)
operator = session.compress()
session.save_artifacts(artifacts)
print(f"compressed n={n} (eps2 = {operator.relative_error():.2e}); artifacts -> {artifacts}")

# 2. one server, two entries: in-process and artifact-backed (hot reload armed)
server = MatvecServer(policy=BatchPolicy(max_batch=16, max_wait_ms=2.0, max_queue=512))
server.register("warm", operator)
server.register("cold", matrix=matrix, config=config, artifacts=artifacts)

rng = np.random.default_rng(0)
client = ServingClient(server)

with server:
    # 3a. concurrent matvecs through the sync client (threads offer the load)
    vectors = rng.standard_normal((64, n))
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=32) as pool:
        results = list(pool.map(lambda v: client.matvec("warm", v), vectors))
    dt = time.perf_counter() - t0
    print(f"64 concurrent matvecs in {dt * 1e3:.1f} ms "
          f"({64 / dt:.0f} req/s, occupancy "
          f"{server.stats()['warm']['batch_occupancy']:.1f})")

    # responses are bit-identical to serving the same vector alone
    alone = client.matvec("warm", vectors[0])
    assert np.array_equal(results[0], alone)

    # 3b. a batch of CG solves (coalesced into one blocked multi-RHS CG)
    rhs = rng.standard_normal((8, n))
    with ThreadPoolExecutor(max_workers=8) as pool:
        solves = list(pool.map(
            lambda b: client.solve("warm", b, shift=1.0, tolerance=1e-8), rhs
        ))
    print(f"8 concurrent solves: iterations={solves[0].iterations}, "
          f"all converged={all(s.converged for s in solves)}")

    # 3c. the asyncio front end drives the same batcher
    async def async_traffic():
        aclient = AsyncServingClient(server)
        return await asyncio.gather(*(aclient.matvec("cold", v) for v in vectors[:16]))

    async_results = asyncio.run(async_traffic())
    print(f"16 async matvecs served (cold entry), "
          f"first response close to direct: "
          f"{np.allclose(async_results[0], operator.apply(vectors[0]), atol=1e-8)}")

    # 4. hot reload: rewrite the artifact file, poll, keep serving
    Session(matrix, config).save_artifacts(artifacts)
    reloaded = server.poll_reloads()
    print(f"hot reload: {reloaded}, cold entry now version "
          f"{server.entry('cold').version}")
    client.matvec("cold", vectors[0])  # the swapped operator serves immediately

    # 5. metrics
    for name, stats in sorted(server.stats().items()):
        lat = stats["latency_ms"]
        print(f"[{name}] requests={stats['requests']} "
              f"batches={stats['batches']} occupancy={stats['batch_occupancy']:.1f} "
              f"p50={lat.get('p50', 0):.2f}ms p99={lat.get('p99', 0):.2f}ms "
              f"reloads={stats['reloads']}")

print("server stopped cleanly")
