#!/usr/bin/env python
"""FMM vs HSS on a PDE-constrained-optimization Hessian (the paper's K02).

K02 is the regularized inverse Laplacian squared — the reduced Hessian of a
2D PDE-constrained optimization problem.  The paper's Figure 6 shows that
for such matrices the FMM variant (a small budget of direct evaluations plus
*low* rank) reaches better accuracy in less time than the HSS variant
(no direct evaluations, so all the accuracy must come from rank).

This example sweeps (rank, budget) combinations and prints the trade-off
table so the crossover is visible.

Run:  python examples/pde_hessian.py [N]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import GOFMMConfig, compress
from repro.core.accuracy import relative_error
from repro.gofmm import run
from repro.matrices import build_matrix
from repro.reporting import format_table


def main(n: int = 2048) -> None:
    matrix = build_matrix("K02", n, seed=0)

    # Note on budgets: the paper quotes budgets of 1–12% at N/m ≈ 128 leaves;
    # at laptop scale the tree has far fewer leaves, so comparable amounts of
    # direct evaluation correspond to larger percentages here.
    cases = [
        ("HSS", 0.00, 32),
        ("HSS", 0.00, 64),
        ("HSS", 0.00, 128),
        ("FMM", 0.10, 32),
        ("FMM", 0.10, 64),
        ("FMM", 0.25, 32),
        ("FMM", 0.25, 64),
    ]

    rows = []
    for label, budget, rank in cases:
        config = GOFMMConfig(
            leaf_size=64, max_rank=rank, tolerance=1e-9, neighbors=16,
            budget=budget, distance="angle", seed=0,
        )
        result = run(matrix, config, num_rhs=16)
        rows.append([
            label,
            rank,
            f"{budget:.0%}",
            result.epsilon2,
            result.average_rank,
            result.compression_seconds,
            result.evaluation_seconds,
            result.compression_seconds + result.evaluation_seconds,
        ])

    print(format_table(
        ["variant", "s", "budget", "eps2", "avg rank", "comp [s]", "eval [s]", "total [s]"],
        rows,
        title=f"K02 (inverse Laplacian squared), N={n}: HSS vs FMM trade-off (Figure 6 analogue)",
    ))
    print()
    print("Expected shape: at equal rank, the FMM rows reach noticeably lower eps2 than")
    print("the HSS rows for a small increase in evaluation time; matching the HSS accuracy")
    print("by rank alone requires a much larger s (and hence O(s^3) skeletonization cost).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
